package lint

import (
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// TestCallGraphTestdata pins the resolution policy over the puritycheck
// fixture: direct calls, method calls, CHA edges for interface dispatch, and
// function-value calls recorded as unknown.
func TestCallGraphTestdata(t *testing.T) {
	pkg, err := LoadDir("testdata/src/puritycheck/flagged")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	g := BuildCallGraph([]*Package{pkg})

	edges := map[string][]string{}
	for _, id := range g.SortedIDs() {
		node := g.Nodes[id]
		from := DisplayName(node.Fn)
		for _, e := range node.Calls {
			edges[from] = append(edges[from], DisplayName(g.Nodes[e.Callee].Fn))
		}
	}

	hasEdge := func(from, to string) {
		t.Helper()
		for _, callee := range edges[from] {
			if callee == to {
				return
			}
		}
		t.Errorf("missing edge %s -> %s (have %v)", from, to, edges[from])
	}
	hasEdge("(*soc.SoC).Tick", "(*soc.SoC).stepOnce")
	hasEdge("(*soc.SoC).stepOnce", "soc.stamp")
	hasEdge("soc.stamp", "time.Now")
	hasEdge("soc.runAll", "(soc.stepper).advance")
	hasEdge("(soc.stepper).advance", "(soc.widget).advance") // the CHA edge
}

// TestCallGraphUnknownCallees pins that function-value calls land in
// Unknown rather than becoming edges.
func TestCallGraphUnknownCallees(t *testing.T) {
	pkg, err := LoadDir("testdata/src/puritycheck/clean")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	g := BuildCallGraph([]*Package{pkg})
	for _, id := range g.SortedIDs() {
		node := g.Nodes[id]
		if DisplayName(node.Fn) != "(*soc.SoC).Tick" {
			continue
		}
		if len(node.Unknown) == 0 {
			t.Error("Tick calls a function-value hook; expected an unknown call site")
		}
		return
	}
	t.Fatal("Tick node not found")
}

// TestCallGraphCrossPackage loads two real module packages and checks the
// edge crossing the package boundary: cpu's decoder calls isa.Decode, and
// the callee id resolves to the same node whether seen from source or from
// export data.
func TestCallGraphCrossPackage(t *testing.T) {
	pkgs, err := Load("", "../cpu", "../isa")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	g := BuildCallGraph(pkgs)

	decode := FuncID("l15cache/internal/isa.Decode")
	node, ok := g.Nodes[decode]
	if !ok {
		t.Fatalf("isa.Decode not in graph (nodes: %d)", len(g.Nodes))
	}
	if node.Decl == nil {
		t.Error("isa.Decode loaded from source but has no declaration: the source and export-data views did not unify")
	}
	found := false
	for _, id := range g.SortedIDs() {
		caller := g.Nodes[id]
		if caller.Pkg == nil || caller.Pkg.Types.Name() != "cpu" {
			continue
		}
		for _, e := range caller.Calls {
			if e.Callee == decode {
				found = true
			}
		}
	}
	if !found {
		t.Error("no cpu function has a call edge to isa.Decode")
	}
}

// TestDisplayName covers the renderer's shapes without loading anything.
func TestDisplayName(t *testing.T) {
	pkg := types.NewPackage("l15cache/internal/soc", "soc")
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	plain := types.NewFunc(token.NoPos, pkg, "Run", sig)
	if got := DisplayName(plain); got != "soc.Run" {
		t.Errorf("DisplayName(plain) = %q, want soc.Run", got)
	}
	noPkg := types.NewFunc(token.NoPos, nil, "init", sig)
	if got := DisplayName(noPkg); got != "init" {
		t.Errorf("DisplayName(noPkg) = %q, want init", got)
	}
}

// TestFuncIDStability pins that FuncID is the FullName string — the property
// the cross-package unification rests on.
func TestFuncIDStability(t *testing.T) {
	pkg := types.NewPackage("l15cache/internal/isa", "isa")
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	fn := types.NewFunc(token.NoPos, pkg, "Decode", sig)
	if id := FuncIDOf(fn); !strings.HasSuffix(string(id), "isa.Decode") {
		t.Errorf("FuncIDOf = %q, want suffix isa.Decode", id)
	}
}

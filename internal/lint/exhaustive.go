package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive enforces total handling of the reproduction's finite state
// spaces: a switch whose tag is a module-declared iota-style enum (a named
// integer type with two or more package-level constants, like isa.Op,
// cpu.TrapKind or rtsim.Kind) must either cover every declared constant or
// carry an explicit default. The failure this kills is silent: add
// OpIPSET's successor to the ISA and every switch that enumerates
// operations keeps compiling, keeps passing the old tests, and silently
// drops the new instruction on the floor.
//
// Scope is deliberate: only enums declared in this module (or the testdata
// package under analysis) are checked — flagging partial switches over
// stdlib types would be noise — and string-backed kinds (workload.Kernel)
// are exempt because their zero value is not a valid member, so partial
// switches there fail loudly at run time already. A case arm that is not a
// constant expression makes the switch uncheckable and it is skipped.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over module-declared iota enum types (isa.Op, cpu.TrapKind, rtsim.Kind, FSM states) must cover every declared constant or carry an explicit default",
	Run:  runExhaustive,
}

func runExhaustive(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return
	}
	members := enumMembers(pass, named)
	if len(members) < 2 {
		return
	}

	covered := map[string]bool{} // constant exact values covered by a case
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return // explicit default: the author chose partial coverage
		}
		for _, expr := range clause.List {
			ctv, ok := pass.TypesInfo.Types[expr]
			if !ok || ctv.Value == nil {
				return // non-constant case arm: coverage is undecidable
			}
			covered[ctv.Value.ExactString()] = true
		}
	}

	var missing []string
	for _, m := range members {
		if !covered[m.val] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.Reportf(sw.Switch,
		"switch over %s is not exhaustive: missing %s (add the cases or an explicit default)",
		enumTypeLabel(named), strings.Join(missing, ", "))
}

// enumMember is one declared constant of an enum type, deduplicated by
// value (covering one alias covers them all).
type enumMember struct {
	name string
	val  string // constant.Value.ExactString
	ord  int64  // numeric value, for stable reporting order
}

// enumMembers collects the enum constants of named, or nil if named is not
// an enum in scope: it must be an integer type declared in this module (or
// the package under analysis) with >= 2 same-typed package-level constants.
func enumMembers(pass *Pass, named *types.Named) []enumMember {
	obj := named.Obj()
	pkg := obj.Pkg()
	if pkg == nil {
		return nil
	}
	if pkg != pass.Pkg && !strings.HasPrefix(pkg.Path(), "l15cache/") && pkg.Path() != "l15cache" {
		return nil // stdlib or third-party enum: out of scope
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	byVal := map[string]enumMember{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		ord, _ := constant.Int64Val(c.Val())
		if prev, dup := byVal[key]; dup {
			// Alias constants: keep the lexically first name for messages.
			if name < prev.name {
				byVal[key] = enumMember{name: name, val: key, ord: ord}
			}
			continue
		}
		byVal[key] = enumMember{name: name, val: key, ord: ord}
	}
	members := make([]enumMember, 0, len(byVal))
	for _, m := range byVal {
		members = append(members, m)
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].ord != members[j].ord {
			return members[i].ord < members[j].ord
		}
		return members[i].name < members[j].name
	})
	return members
}

// enumTypeLabel renders the enum type with its package name (isa.Op).
func enumTypeLabel(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

package lint

import (
	"go/ast"
	"go/types"
)

// PurityCheck is the interprocedural upgrade of walltime: it computes the
// transitive closure of functions reachable from the simulator entry points
// (the Tick/Step/Run family in the simulation packages, plus every exported
// function of internal/experiments) and reports any path from an entry
// point to a determinism hazard — a wall-clock read, a global math/rand
// draw, an env/filesystem read, or an order-dependent map iteration — with
// the full call chain as evidence. The syntactic walltime check catches a
// time.Now written directly into a simulator package; this one catches the
// time.Now hidden two helper calls deep in a package walltime never looks
// at.
//
// Deliberate limits, so real findings are not drowned:
//
//   - calls through function values (trap handlers, observers, runner
//     closures received as parameters) are recorded as unknown by the call
//     graph and not treated as impure;
//   - package runner keeps its sanctioned carve-outs: wall-clock reads
//     (operator-facing progress/ETA gauges only) and filesystem reads (the
//     -checkpoint resume path) are not seeded there, while the global-rand
//     and map-order rules still apply;
//   - package flight keeps the matching wall-clock carve-out only: its
//     recorded events are cycle-stamped sim-time, and the clock merely
//     paces the live /events SSE polling loop;
//   - package telemetry keeps the same wall-clock-only carve-out: its
//     sampler and runtime collector timestamp operator-facing observations
//     of the simulation, and nothing in the deterministic artifact path
//     ever reads a telemetry value back;
//   - package memo keeps a filesystem-read carve-out: the content-addressed
//     trial cache (DESIGN.md §12) keys disk entries by a hash of the full
//     trial input, so a verified read only ever replaces a computation with
//     that computation's own bytes — it can change how a result is obtained,
//     never which result. Wall-clock, global-rand and map-order rules still
//     apply there;
//   - only filesystem/env *reads* are sinks. Writes (reports, CSVs,
//     checkpoints) do not feed results back into the simulation.
var PurityCheck = &Analyzer{
	Name:      "puritycheck",
	Doc:       "reports call paths from simulator entry points (Tick/Step/Run, experiment sweeps) to wall-clock reads, global rand, env/FS reads or order-dependent map iteration, with the full call chain",
	RunModule: runPurityCheck,
}

// purityRootPkgs are the package names whose Tick/Step/Run-family methods
// and functions are treated as simulation entry points.
var purityRootPkgs = map[string]bool{
	"cpu":      true,
	"soc":      true,
	"l15":      true,
	"rtsim":    true,
	"rtos":     true,
	"sched":    true,
	"schedsim": true,
	"etm":      true,
	"monitor":  true,
	// flight is observability, not simulation, but its Emit path runs
	// inside the simulator loops, so its Run-family roots are checked too
	// (with the wall-clock carve-out below).
	"flight": true,
}

// purityRootNames are the entry-point function names within purityRootPkgs.
var purityRootNames = map[string]bool{
	"Tick": true, "Step": true, "StepIssue": true, "StepDual": true,
	"Run": true, "Simulate": true,
}

// fsReadFuncs are the os package-level functions that read the environment
// or filesystem — inputs that can differ between hosts and runs.
var fsReadFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
	"Open": true, "OpenFile": true, "ReadFile": true, "ReadDir": true,
	"Stat": true, "Lstat": true, "Getwd": true, "Hostname": true,
	"UserHomeDir": true, "UserConfigDir": true, "UserCacheDir": true,
	"Executable": true,
}

// isPurityRoot reports whether node is a simulation entry point.
func isPurityRoot(node *CallNode) bool {
	if node.Decl == nil || node.Pkg == nil {
		return false
	}
	name := node.Pkg.Types.Name()
	if name == "experiments" {
		return node.Decl.Name.IsExported()
	}
	return purityRootPkgs[name] && purityRootNames[node.Decl.Name.Name]
}

// classifySink classifies a called function as a determinism hazard,
// returning the fact kind ("" if the call is harmless). Methods are never
// sinks: (*rand.Rand).Intn on an injected generator is the approved path.
func classifySink(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return "wall-clock"
		}
	case "math/rand", "math/rand/v2":
		if !seededRandFuncs[fn.Name()] {
			return "global-rand"
		}
	case "os":
		if fsReadFuncs[fn.Name()] {
			return "fs-read"
		}
	}
	return ""
}

func runPurityCheck(mp *ModulePass) error {
	g := mp.Graph
	fs := NewFactSet(g)

	// Seed intrinsic facts on every module function body.
	for _, id := range g.SortedIDs() {
		node := g.Nodes[id]
		if node.Decl == nil {
			continue
		}
		runnerExempt := node.Pkg.Types.Name() == "runner"
		flightExempt := node.Pkg.Types.Name() == "flight"
		memoExempt := node.Pkg.Types.Name() == "memo"
		telemetryExempt := node.Pkg.Types.Name() == "telemetry"
		for _, edge := range node.Calls {
			callee := g.Nodes[edge.Callee]
			kind := classifySink(callee.Fn)
			if kind == "" {
				continue
			}
			if runnerExempt && (kind == "wall-clock" || kind == "fs-read") {
				continue // progress gauges and checkpoint resume (see doc)
			}
			if flightExempt && kind == "wall-clock" {
				continue // SSE poll pacing; events are cycle-stamped (see doc)
			}
			if telemetryExempt && kind == "wall-clock" {
				continue // sampler timestamps observations only (see doc)
			}
			if memoExempt && kind == "fs-read" {
				continue // content-addressed cache: a hit replays the trial's own bytes (see doc)
			}
			fs.Seed(id, Fact{
				Kind:   kind,
				Sink:   DisplayName(callee.Fn),
				Origin: node.Pkg.Fset.Position(edge.Pos),
			})
		}
		seedMapOrderFacts(fs, node)
	}

	fs.Propagate()

	// Report each hazard once, from the first (sorted) entry point that
	// reaches it, at the sink position so the fix lands where the hazard is.
	reported := map[Fact]bool{}
	for _, id := range g.SortedIDs() {
		node := g.Nodes[id]
		if !isPurityRoot(node) {
			continue
		}
		for _, f := range fs.FactsOf(id) {
			if reported[f] {
				continue
			}
			reported[f] = true
			chain := fs.Chain(id, f)
			mp.ReportAt(f.Origin, chain,
				"impure path to %s (%s) from entry point %s: %s; simulator results must not depend on host state — inject the dependency or sort",
				f.Sink, f.Kind, DisplayName(node.Fn), ChainString(chain)+" -> "+f.Sink)
		}
	}
	return nil
}

// seedMapOrderFacts marks node if its body (closures included) iterates a
// map with an order-dependent effect and no restoring sort — the same
// judgement detmap applies syntactically inside the sim packages, here
// turned into a fact that travels to whatever entry point can reach it.
func seedMapOrderFacts(fs *FactSet, node *CallNode) {
	pass := &Pass{Fset: node.Pkg.Fset, TypesInfo: node.Pkg.Info, Pkg: node.Pkg.Types}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		effect := orderSensitiveEffect(pass, rng)
		if effect == "" || sortedAfter(pass, node.Decl.Body, rng.End()) {
			return true
		}
		fs.Seed(node.ID, Fact{
			Kind:   "map-order",
			Sink:   "map iteration that " + effect,
			Origin: node.Pkg.Fset.Position(rng.For),
		})
		return true
	})
}

package lint

// Facts are per-function properties that flow interprocedurally: an
// analyzer seeds a fact on the function that exhibits a behaviour (a
// wall-clock read, an order-dependent map walk), and propagation pushes the
// fact caller-ward over the call graph until a fixpoint — so a fact seeded
// three packages deep surfaces on the simulator entry point that can reach
// it, with the hop-by-hop evidence preserved.
//
// Package boundaries need no special casing: the call graph's edges already
// cross them (callgraph.go unifies the source and export-data views of a
// function), and the fixpoint loop visits nodes in sorted-FuncID order, so
// propagation order — and therefore the recorded chains — is deterministic
// regardless of package load order.

import "go/token"

// Fact is one interprocedural property, identified by (Kind, Origin): the
// kind of behaviour and the exact source position that exhibits it. Origin
// is a resolved token.Position (not a token.Pos) so facts stay meaningful
// across packages loaded into different file sets.
type Fact struct {
	Kind   string         // e.g. "wall-clock", "global-rand", "fs-read", "map-order"
	Sink   string         // human label of the behaviour, e.g. "time.Now"
	Origin token.Position // position of the sink inside the seeded function
}

// factState is a fact as held by one function: the fact plus the first hop
// of the path toward its origin.
type factState struct {
	next FuncID    // callee the fact arrived from ("" at the seeded function)
	site token.Pos // call position in this function leading to next (NoPos at seed or CHA hop)
}

// FactSet holds seeded facts and computes their transitive closure over a
// call graph.
type FactSet struct {
	graph *CallGraph
	facts map[FuncID]map[Fact]*factState
	order map[FuncID][]Fact // insertion order, the deterministic iteration order
}

// NewFactSet returns an empty fact set over g.
func NewFactSet(g *CallGraph) *FactSet {
	return &FactSet{
		graph: g,
		facts: map[FuncID]map[Fact]*factState{},
		order: map[FuncID][]Fact{},
	}
}

// Seed attaches an intrinsic fact to id (the function whose body exhibits
// the behaviour). Duplicate (Kind, Origin) seeds are ignored.
func (fs *FactSet) Seed(id FuncID, f Fact) {
	fs.add(id, f, "", token.NoPos)
}

func (fs *FactSet) add(id FuncID, f Fact, next FuncID, site token.Pos) bool {
	m, ok := fs.facts[id]
	if !ok {
		m = map[Fact]*factState{}
		fs.facts[id] = m
	}
	if _, dup := m[f]; dup {
		return false
	}
	m[f] = &factState{next: next, site: site}
	fs.order[id] = append(fs.order[id], f)
	return true
}

// Propagate pushes every fact caller-ward to a fixpoint. Recursion is safe:
// a fact is added to a function at most once, and a function's recorded
// next-hop always points at a function that acquired the fact strictly
// earlier, so reconstructed chains terminate at the seed.
func (fs *FactSet) Propagate() {
	ids := fs.graph.SortedIDs()
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			node := fs.graph.Nodes[id]
			for _, edge := range node.Calls {
				for _, f := range fs.order[edge.Callee] {
					if fs.add(id, f, edge.Callee, edge.Pos) {
						changed = true
					}
				}
			}
		}
	}
}

// FactsOf returns id's facts in deterministic order (seeded and inherited,
// ordered by acquisition, which Propagate makes reproducible).
func (fs *FactSet) FactsOf(id FuncID) []Fact {
	return fs.order[id]
}

// ChainEntry is one hop of interprocedural evidence: a function and the
// call site inside it that leads toward the sink. The final entry is the
// seeded function and Site is the sink itself.
type ChainEntry struct {
	Func string         // DisplayName of the function
	Site token.Position // resolved position (zero when unknown, e.g. CHA hops)
}

// Chain reconstructs the path from holder down to the seed of fact,
// outermost first. It returns nil if holder does not hold the fact.
func (fs *FactSet) Chain(holder FuncID, f Fact) []ChainEntry {
	var chain []ChainEntry
	for cur := holder; ; {
		st, ok := fs.facts[cur][f]
		if !ok {
			return nil
		}
		node := fs.graph.Nodes[cur]
		entry := ChainEntry{Func: DisplayName(node.Fn)}
		if st.next == "" {
			entry.Site = f.Origin
			return append(chain, entry)
		}
		if st.site.IsValid() && node.Pkg != nil {
			entry.Site = node.Pkg.Fset.Position(st.site)
		}
		chain = append(chain, entry)
		cur = st.next
	}
}

// ChainString renders a chain as the compact arrow form used in diagnostic
// messages: "(*soc.SoC).Run -> (*cpu.Core).Step -> time.Now".
func ChainString(chain []ChainEntry) string {
	parts := make([]string, len(chain))
	for i, e := range chain {
		parts[i] = e.Func
	}
	return joinArrow(parts)
}

func joinArrow(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " -> "
		}
		out += p
	}
	return out
}

package lint

// Tests for the accepted-debt baseline: the line-independent key, the
// per-entry count budget, the suppression interaction, and the
// marshal/parse round trip codecheck relies on.

import (
	"go/token"
	"testing"
)

func baselineDiag(analyzer, file string, line int, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick"),
		baselineDiag("hotalloc", "/work/a.go", 30, "alloc in Tick"), // same key, second instance
		baselineDiag("wakeupsafe", "/work/b.go", 5, "impure probe"),
	}
	sup := baselineDiag("errdrop", "/work/c.go", 1, "dropped error")
	sup.Suppressed = true
	diags = append(diags, sup)

	b := NewBaseline(diags, "/work")
	if len(b.Findings) != 2 {
		t.Fatalf("baseline has %d entries, want 2 (duplicates collapse, suppressed excluded)", len(b.Findings))
	}
	if e := b.Findings[0]; e.Analyzer != "hotalloc" || e.File != "a.go" || e.Count != 2 {
		t.Errorf("first entry = %+v, want hotalloc/a.go count 2", e)
	}

	data, err := b.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	parsed, err := ParseBaseline(data)
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	if len(parsed.Findings) != 2 || parsed.Findings[0].Count != 2 {
		t.Fatalf("round trip lost entries: %+v", parsed.Findings)
	}
}

func TestBaselineApplyIsLineIndependent(t *testing.T) {
	old := []Diagnostic{baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick")}
	b := NewBaseline(old, "/work")

	// Same finding, shifted 90 lines by an unrelated edit: still covered.
	moved := []Diagnostic{baselineDiag("hotalloc", "/work/a.go", 100, "alloc in Tick")}
	if n := b.Apply(moved, "/work"); n != 1 || !moved[0].Baselined {
		t.Errorf("moved finding not baselined (marked %d)", n)
	}
}

func TestBaselineApplyCountBudget(t *testing.T) {
	old := []Diagnostic{baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick")}
	b := NewBaseline(old, "/work")

	// A second instance of the accepted finding appears: only one is
	// covered, the new one blocks.
	now := []Diagnostic{
		baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick"),
		baselineDiag("hotalloc", "/work/a.go", 50, "alloc in Tick"),
	}
	if n := b.Apply(now, "/work"); n != 1 {
		t.Fatalf("marked %d findings, want 1 (count budget exceeded)", n)
	}
	if !now[0].Baselined || now[1].Baselined {
		t.Errorf("budget consumed out of order: %v %v", now[0].Baselined, now[1].Baselined)
	}
}

func TestBaselineDoesNotCoverSuppressed(t *testing.T) {
	old := []Diagnostic{baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick")}
	b := NewBaseline(old, "/work")

	sup := baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick")
	sup.Suppressed = true
	fresh := baselineDiag("hotalloc", "/work/a.go", 20, "alloc in Tick")
	diags := []Diagnostic{sup, fresh}
	if n := b.Apply(diags, "/work"); n != 1 {
		t.Fatalf("marked %d, want 1", n)
	}
	if diags[0].Baselined {
		t.Error("suppressed finding consumed a baseline slot")
	}
	if !diags[1].Baselined {
		t.Error("unsuppressed finding should take the slot")
	}
}

func TestBaselineRejectsUnknownVersion(t *testing.T) {
	if _, err := ParseBaseline([]byte(`{"version": 99, "findings": []}`)); err == nil {
		t.Fatal("version 99 accepted")
	}
	if _, err := ParseBaseline([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBaselineMessageChangeIsNew(t *testing.T) {
	old := []Diagnostic{baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick")}
	b := NewBaseline(old, "/work")
	reworded := []Diagnostic{baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Step")}
	if n := b.Apply(reworded, "/work"); n != 0 || reworded[0].Baselined {
		t.Error("reworded finding must not match the baseline")
	}
}

package lint

// Tests for the accepted-debt baseline: the line-independent key, the
// per-entry count budget, the suppression interaction, and the
// marshal/parse round trip codecheck relies on.

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func baselineDiag(analyzer, file string, line int, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick"),
		baselineDiag("hotalloc", "/work/a.go", 30, "alloc in Tick"), // same key, second instance
		baselineDiag("wakeupsafe", "/work/b.go", 5, "impure probe"),
	}
	sup := baselineDiag("errdrop", "/work/c.go", 1, "dropped error")
	sup.Suppressed = true
	diags = append(diags, sup)

	b := NewBaseline(diags, "/work")
	if len(b.Findings) != 2 {
		t.Fatalf("baseline has %d entries, want 2 (duplicates collapse, suppressed excluded)", len(b.Findings))
	}
	if e := b.Findings[0]; e.Analyzer != "hotalloc" || e.File != "a.go" || e.Count != 2 {
		t.Errorf("first entry = %+v, want hotalloc/a.go count 2", e)
	}

	data, err := b.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	parsed, err := ParseBaseline(data)
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	if len(parsed.Findings) != 2 || parsed.Findings[0].Count != 2 {
		t.Fatalf("round trip lost entries: %+v", parsed.Findings)
	}
}

func TestBaselineApplyIsLineIndependent(t *testing.T) {
	old := []Diagnostic{baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick")}
	b := NewBaseline(old, "/work")

	// Same finding, shifted 90 lines by an unrelated edit: still covered.
	moved := []Diagnostic{baselineDiag("hotalloc", "/work/a.go", 100, "alloc in Tick")}
	if n := b.Apply(moved, "/work"); n != 1 || !moved[0].Baselined {
		t.Errorf("moved finding not baselined (marked %d)", n)
	}
}

func TestBaselineApplyCountBudget(t *testing.T) {
	old := []Diagnostic{baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick")}
	b := NewBaseline(old, "/work")

	// A second instance of the accepted finding appears: only one is
	// covered, the new one blocks.
	now := []Diagnostic{
		baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick"),
		baselineDiag("hotalloc", "/work/a.go", 50, "alloc in Tick"),
	}
	if n := b.Apply(now, "/work"); n != 1 {
		t.Fatalf("marked %d findings, want 1 (count budget exceeded)", n)
	}
	if !now[0].Baselined || now[1].Baselined {
		t.Errorf("budget consumed out of order: %v %v", now[0].Baselined, now[1].Baselined)
	}
}

func TestBaselineDoesNotCoverSuppressed(t *testing.T) {
	old := []Diagnostic{baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick")}
	b := NewBaseline(old, "/work")

	sup := baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick")
	sup.Suppressed = true
	fresh := baselineDiag("hotalloc", "/work/a.go", 20, "alloc in Tick")
	diags := []Diagnostic{sup, fresh}
	if n := b.Apply(diags, "/work"); n != 1 {
		t.Fatalf("marked %d, want 1", n)
	}
	if diags[0].Baselined {
		t.Error("suppressed finding consumed a baseline slot")
	}
	if !diags[1].Baselined {
		t.Error("unsuppressed finding should take the slot")
	}
}

func TestBaselineRejectsUnknownVersion(t *testing.T) {
	if _, err := ParseBaseline([]byte(`{"version": 99, "findings": []}`)); err == nil {
		t.Fatal("version 99 accepted")
	}
	if _, err := ParseBaseline([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBaselineMessageChangeIsNew(t *testing.T) {
	old := []Diagnostic{baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick")}
	b := NewBaseline(old, "/work")
	reworded := []Diagnostic{baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Step")}
	if n := b.Apply(reworded, "/work"); n != 0 || reworded[0].Baselined {
		t.Error("reworded finding must not match the baseline")
	}
}

func TestBaselineExcludesWarnings(t *testing.T) {
	warn := baselineDiag("fingerprintcomplete", "/work/a.go", 10, "dead key")
	warn.Warning = true
	b := NewBaseline([]Diagnostic{warn}, "/work")
	if len(b.Findings) != 0 {
		t.Fatalf("warning entered the baseline: %+v", b.Findings)
	}

	// A warning must neither consume a slot nor count toward staleness.
	accepted := NewBaseline([]Diagnostic{baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick")}, "/work")
	sameKeyWarn := baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick")
	sameKeyWarn.Warning = true
	diags := []Diagnostic{sameKeyWarn}
	if n := accepted.Apply(diags, "/work"); n != 0 || diags[0].Baselined {
		t.Error("warning consumed a baseline slot")
	}
	if stale := accepted.Stale(diags, "/work"); len(stale) != 1 {
		t.Errorf("warning satisfied a baseline entry: stale = %+v", stale)
	}
}

func TestBaselineStale(t *testing.T) {
	old := []Diagnostic{
		baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick"),
		baselineDiag("hotalloc", "/work/a.go", 30, "alloc in Tick"),
		baselineDiag("errdrop", "/work/b.go", 5, "dropped error"),
	}
	b := NewBaseline(old, "/work")

	// One of the two hotalloc instances is fixed and the errdrop finding
	// is gone entirely: the excess counts are stale.
	now := []Diagnostic{baselineDiag("hotalloc", "/work/a.go", 10, "alloc in Tick")}
	stale := b.Stale(now, "/work")
	if len(stale) != 2 {
		t.Fatalf("Stale returned %d entries, want 2: %+v", len(stale), stale)
	}
	byAnalyzer := map[string]int{}
	for _, e := range stale {
		byAnalyzer[e.Analyzer] = e.Count
	}
	if byAnalyzer["hotalloc"] != 1 || byAnalyzer["errdrop"] != 1 {
		t.Errorf("stale counts = %v, want hotalloc:1 errdrop:1", byAnalyzer)
	}

	// Fully matched baseline: nothing stale.
	if stale := b.Stale(old, "/work"); len(stale) != 0 {
		t.Errorf("fully matched baseline reported stale entries: %+v", stale)
	}
}

// TestCommittedBaselineNotStale runs the full suite over the real module
// and requires every entry of the committed lint.baseline.json to still
// match a current finding: stale accepted debt would silently absorb the
// next regression with the same key.
func TestCommittedBaselineNotStale(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(root, "lint.baseline.json"))
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	b, err := ParseBaseline(data)
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	pkgs, err := Load("", "../../...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := RunModule(pkgs, All())
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	if stale := b.Stale(diags, root); len(stale) != 0 {
		for _, e := range stale {
			t.Errorf("stale baseline entry (prune with -update-baseline): %s: %s: %s (count %d)",
				e.Analyzer, e.File, e.Message, e.Count)
		}
	}
}

package lint

// The interprocedural layer: a conservative whole-module call graph that
// per-function facts (facts.go) propagate over. The graph is built once per
// RunModule from the same source-checked packages the per-package analyzers
// see, so it costs one extra AST walk, not a second load.
//
// Resolution policy, from most to least precise:
//
//   - direct calls and method calls with a statically known receiver type
//     resolve to their *types.Func and become ordinary edges;
//   - calls through an interface method become an edge to the interface
//     method plus class-hierarchy edges from that method to every named
//     type declared in the loaded packages that implements the interface
//     (stdlib implementations are invisible — their bodies are export data
//     — so they neither add edges nor facts);
//   - calls through function values (locals, parameters, struct fields)
//     cannot be resolved and are recorded per caller in Unknown. Analyzers
//     must decide their own policy for them; puritycheck deliberately does
//     not treat them as impure, because the simulator's injected callbacks
//     (trap handlers, observers) would otherwise drown every real finding.
//
// Function identity across packages is the subtle part: the loader
// type-checks each target package from source while its importers see it
// through compiler export data, so the same function exists as two distinct
// *types.Func objects. types.Func.FullName renders both views identically
// ("(*l15cache/internal/soc.SoC).Run"), which is what FuncID is.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FuncID is the stable cross-package identity of a function: the
// types.Func.FullName string, identical for the source-checked and
// export-data views of the same declaration.
type FuncID string

// CallEdge is one resolved call site.
type CallEdge struct {
	Callee FuncID
	Pos    token.Pos // call position in the caller ("" / NoPos for CHA edges)
}

// CallNode is one function in the graph. Functions only known through
// export data (stdlib, and interface methods) have Pkg and Decl nil: they
// can carry intrinsic facts but contribute no call edges of their own
// beyond the class-hierarchy edges attached to interface methods.
type CallNode struct {
	ID      FuncID
	Fn      *types.Func
	Pkg     *Package      // declaring package, nil for export-data functions
	Decl    *ast.FuncDecl // declaration with body, nil for export-data functions
	Calls   []CallEdge    // resolved call sites, in source order (CHA edges last)
	Unknown []token.Pos   // call sites through function values, unresolvable
}

// CallGraph is the whole-module conservative call graph.
type CallGraph struct {
	Nodes map[FuncID]*CallNode
}

// FuncIDOf derives the graph key for fn.
func FuncIDOf(fn *types.Func) FuncID { return FuncID(fn.FullName()) }

// SortedIDs returns every node id in lexical order — the deterministic
// iteration order every traversal over the graph must use.
func (g *CallGraph) SortedIDs() []FuncID {
	ids := make([]FuncID, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (g *CallGraph) ensure(fn *types.Func) *CallNode {
	id := FuncIDOf(fn)
	n, ok := g.Nodes[id]
	if !ok {
		n = &CallNode{ID: id, Fn: fn}
		g.Nodes[id] = n
	}
	return n
}

// BuildCallGraph constructs the graph over the given packages (normally
// everything one Load returned, so cross-package edges resolve).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: map[FuncID]*CallNode{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := g.ensure(fn)
				node.Pkg = pkg
				node.Decl = fd
				g.collectCalls(pkg, fd, node)
			}
		}
	}
	g.addInterfaceImpls(pkgs)
	return g
}

// collectCalls walks fd's body (including function literals: a closure's
// calls are attributed to the declaring function, a sound over-
// approximation for reachability) and records one edge per resolvable call.
func (g *CallGraph) collectCalls(pkg *Package, fd *ast.FuncDecl, node *CallNode) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		// Conversions (T(x), pkg.T(x), []byte(x)) and builtins parse as
		// calls; neither is a call edge.
		if tv, ok := pkg.Info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
			return true
		}
		switch fun := fun.(type) {
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
				node.Calls = append(node.Calls, CallEdge{Callee: g.ensure(fn).ID, Pos: fun.Pos()})
				return true
			}
		case *ast.SelectorExpr:
			if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
				node.Calls = append(node.Calls, CallEdge{Callee: g.ensure(fn).ID, Pos: fun.Sel.Pos()})
				return true
			}
		case *ast.FuncLit:
			// Immediately-invoked literal: its body is walked by this same
			// Inspect and attributed to node already.
			return true
		}
		node.Unknown = append(node.Unknown, call.Pos())
		return true
	})
}

// addInterfaceImpls attaches class-hierarchy edges: every interface method
// that appears as a callee gains edges to the matching concrete method of
// every named type in the loaded packages that implements the interface.
func (g *CallGraph) addInterfaceImpls(pkgs []*Package) {
	// Concrete named types declared in the loaded packages, sorted for
	// deterministic edge order.
	var concrete []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			concrete = append(concrete, named)
		}
	}
	sort.Slice(concrete, func(i, j int) bool {
		return concrete[i].Obj().Id() < concrete[j].Obj().Id()
	})

	for _, id := range g.SortedIDs() {
		node := g.Nodes[id]
		sig, ok := node.Fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for _, named := range concrete {
			var impl types.Type = named
			if !types.Implements(impl, iface) {
				ptr := types.NewPointer(named)
				if !types.Implements(ptr, iface) {
					continue
				}
				impl = ptr
			}
			obj, _, _ := types.LookupFieldOrMethod(impl, true, node.Fn.Pkg(), node.Fn.Name())
			m, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			node.Calls = append(node.Calls, CallEdge{Callee: g.ensure(m).ID})
		}
	}
}

// DisplayName renders fn compactly for diagnostics — package name rather
// than full import path, so chains stay readable: "(*soc.SoC).Run",
// "time.Now".
func DisplayName(fn *types.Func) string {
	qual := func(p *types.Package) string {
		if p == nil {
			return ""
		}
		return p.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		star := ""
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			star = "*"
		}
		recv = types.Unalias(recv)
		if named, ok := recv.(*types.Named); ok {
			name := named.Obj().Name()
			if q := qual(named.Obj().Pkg()); q != "" {
				name = q + "." + name
			}
			return "(" + star + name + ")." + fn.Name()
		}
		return "(" + strings.TrimPrefix(types.TypeString(recv, qual), "*") + ")." + fn.Name()
	}
	if q := qual(fn.Pkg()); q != "" {
		return q + "." + fn.Name()
	}
	return fn.Name()
}

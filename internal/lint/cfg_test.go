package lint

// Tests for the CFG/dataflow layer, pinning exactly the shapes the
// analyzers lean on: dead code after return, labeled break/continue,
// defer-in-loop, switch fallthrough, select dispatch, short-circuit
// operand splitting and reaching-definitions joins.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildTestCFG parses and type-checks src (one file, no imports), builds
// the CFG of the named function and returns the pieces tests poke at.
func buildTestCFG(t *testing.T, src, fn string) (*CFG, *ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test_src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := newInfo()
	conf := types.Config{}
	if _, err := conf.Check("cfgtest", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return NewCFG(fd.Body), fd, info
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil, nil
}

// findIdent locates the identifier spelled name at its nth occurrence
// (0-based) inside fd.
func findIdent(t *testing.T, fd *ast.FuncDecl, name string, nth int) *ast.Ident {
	t.Helper()
	var found *ast.Ident
	seen := 0
	ast.Inspect(fd, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if seen == nth {
				found = id
				return false
			}
			seen++
		}
		return true
	})
	if found == nil {
		t.Fatalf("ident %s (occurrence %d) not found", name, nth)
	}
	return found
}

// findCall locates the call whose callee identifier is name.
func findCall(t *testing.T, fd *ast.FuncDecl, name string) *ast.CallExpr {
	t.Helper()
	var found *ast.CallExpr
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
			found = call
			return false
		}
		return true
	})
	if found == nil {
		t.Fatalf("call %s(...) not found", name)
	}
	return found
}

func TestCFGDeadCodeAfterReturn(t *testing.T) {
	cfg, fd, _ := buildTestCFG(t, `package p
func mark() {}
func f() int {
	x := 1
	return x
	mark()
	return 0
}`, "f")
	call := findCall(t, fd, "mark")
	blk := cfg.ContainingBlock(call.Pos())
	if blk == nil {
		t.Fatal("dead statement not placed in any block")
	}
	if blk.Live {
		t.Error("statement after return marked live")
	}
	if !cfg.Exit.Live {
		t.Error("exit unreachable")
	}
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	cfg, fd, info := buildTestCFG(t, `package p
func dead() {}
func f() int {
	x := 0
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 {
				x = 1
				continue outer
			}
			if j == 2 {
				x = 2
				break outer
			}
			dead()
		}
	}
	return x
}`, "f")
	// Both labeled jumps terminate their blocks; the return joins the
	// zero def, the continue-outer def and the break-outer def.
	rd := cfg.ReachingDefs(info, fd)
	// Occurrences of "x": decl x:=0 (0), x=1 (1), x=2 (2), return x (3).
	ret := findIdent(t, fd, "x", 3)
	defs := rd.DefsReaching(ret)
	if len(defs) != 3 {
		t.Fatalf("return x sees %d defs, want 3 (x:=0, x=1 via continue outer, x=2 via break outer)", len(defs))
	}
	// dead() is reachable (runs when j is 0), so the labeled jumps must
	// not have severed the straight-line path.
	if blk := cfg.ContainingBlock(findCall(t, fd, "dead").Pos()); blk == nil || !blk.Live {
		t.Error("statement between labeled jumps should be live")
	}
}

func TestCFGUnlabeledContinueTargetsInnerLoop(t *testing.T) {
	cfg, fd, info := buildTestCFG(t, `package p
func f() int {
	x := 0
	for i := 0; i < 2; i++ {
		if i == 0 {
			x = 1
			continue
		}
		x = 2
	}
	return x
}`, "f")
	rd := cfg.ReachingDefs(info, fd)
	ret := findIdent(t, fd, "x", 3)
	defs := rd.DefsReaching(ret)
	if len(defs) != 3 {
		t.Fatalf("return x sees %d defs, want 3", len(defs))
	}
}

func TestCFGDeferInLoop(t *testing.T) {
	cfg, fd, _ := buildTestCFG(t, `package p
func cleanup(i int) {}
func f() {
	for i := 0; i < 3; i++ {
		defer cleanup(i)
	}
}`, "f")
	if len(cfg.Defers) != 1 {
		t.Fatalf("got %d defer registrations, want 1", len(cfg.Defers))
	}
	// The deferred call executes at exit: the exit block replays it.
	found := false
	for _, n := range cfg.Exit.Nodes {
		if n == cfg.Defers[0].Call {
			found = true
		}
	}
	if !found {
		t.Error("deferred call not replayed into the exit block")
	}
	_ = fd
}

func TestCFGSwitchFallthrough(t *testing.T) {
	cfg, fd, info := buildTestCFG(t, `package p
func f(k int) int {
	x := 0
	switch k {
	case 0:
		x = 1
		fallthrough
	case 1:
		return x
	}
	return x
}`, "f")
	rd := cfg.ReachingDefs(info, fd)
	// The x in `return x` inside case 1 must see both the initial def
	// (dispatch straight to case 1) and x = 1 (fallthrough from case 0).
	ret := findIdent(t, fd, "x", 2)
	defs := rd.DefsReaching(ret)
	if len(defs) != 2 {
		t.Fatalf("case-1 return sees %d defs, want 2 (x:=0 via dispatch, x=1 via fallthrough)", len(defs))
	}
}

func TestCFGSwitchNoDefaultFallsOut(t *testing.T) {
	cfg, fd, info := buildTestCFG(t, `package p
func f(k int) int {
	x := 0
	switch k {
	case 0:
		x = 1
	}
	return x
}`, "f")
	rd := cfg.ReachingDefs(info, fd)
	ret := findIdent(t, fd, "x", 2)
	defs := rd.DefsReaching(ret)
	if len(defs) != 2 {
		t.Fatalf("return sees %d defs, want 2 (no-match path keeps x:=0)", len(defs))
	}
}

func TestCFGSelect(t *testing.T) {
	cfg, fd, info := buildTestCFG(t, `package p
func f(ch chan int) int {
	x := 0
	select {
	case v := <-ch:
		x = v
	default:
	}
	return x
}`, "f")
	rd := cfg.ReachingDefs(info, fd)
	ret := findIdent(t, fd, "x", 2)
	defs := rd.DefsReaching(ret)
	if len(defs) != 2 {
		t.Fatalf("return sees %d defs, want 2 (received and default paths)", len(defs))
	}
	// Every clause block must be live.
	for _, blk := range cfg.Blocks {
		if blk.Kind == "select.case" && !blk.Live {
			t.Error("select clause unreachable")
		}
	}
}

func TestCFGShortCircuitOperandsSplit(t *testing.T) {
	cfg, fd, _ := buildTestCFG(t, `package p
func a(x int) bool { return x > 0 }
func b(x int) bool { return x < 10 }
func f(x int) int {
	if a(x) && b(x) {
		return 1
	}
	return 0
}`, "f")
	ablk := cfg.ContainingBlock(findCall(t, fd, "a").Pos())
	bblk := cfg.ContainingBlock(findCall(t, fd, "b").Pos())
	if ablk == nil || bblk == nil {
		t.Fatal("operand blocks not found")
	}
	if ablk == bblk {
		t.Fatal("short-circuit operands share a block; && must split them")
	}
	// b's block is entered only from a's block (the true edge).
	foundPred := false
	for _, p := range bblk.Preds {
		if p == ablk {
			foundPred = true
		}
	}
	if !foundPred {
		t.Error("second && operand not dominated by the first")
	}
	// a's block must also branch around b (the false edge): two distinct
	// successors.
	if len(ablk.Succs) < 2 {
		t.Errorf("first && operand has %d successors, want 2 (true and false edges)", len(ablk.Succs))
	}
}

func TestCFGGotoSkipsDeadDefs(t *testing.T) {
	cfg, fd, info := buildTestCFG(t, `package p
func f() int {
	x := 0
	goto L
	x = 1
L:
	return x
}`, "f")
	rd := cfg.ReachingDefs(info, fd)
	ret := findIdent(t, fd, "x", 2)
	defs := rd.DefsReaching(ret)
	if len(defs) != 1 {
		t.Fatalf("return sees %d defs, want 1 (the dead x=1 must not flow)", len(defs))
	}
	if rhs := defs[0].RHS; rhs == nil || !strings.Contains(exprText(rhs), "0") {
		t.Errorf("surviving def is not x := 0")
	}
}

func TestCFGTypeSwitch(t *testing.T) {
	cfg, fd, info := buildTestCFG(t, `package p
func f(v any) int {
	x := 0
	switch v.(type) {
	case int:
		x = 1
	case string:
		x = 2
	}
	return x
}`, "f")
	rd := cfg.ReachingDefs(info, fd)
	ret := findIdent(t, fd, "x", 3)
	defs := rd.DefsReaching(ret)
	if len(defs) != 3 {
		t.Fatalf("return sees %d defs, want 3", len(defs))
	}
}

// exprText renders a small expression for assertions (positions-free).
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.BasicLit:
		return e.Value
	case *ast.Ident:
		return e.Name
	}
	return ""
}

// Package lint is the repository's custom static-analysis suite: six
// analyzers that encode the simulator's correctness invariants — run-to-run
// determinism, way-bitmap discipline, metrics atomicity, error hygiene and
// godoc coverage — as machine-checked rules, plus the loader and runner
// behind cmd/codecheck.
//
// The container this repository grows in has no module proxy access, so the
// suite cannot depend on golang.org/x/tools/go/analysis. Instead this
// package is a deliberate, minimal mirror of that API (Analyzer, Pass,
// Diagnostic, an analysistest-style "// want" harness) built only on the
// standard library: packages are loaded with `go list -export` and
// type-checked from source with go/types, import resolution going through
// the compiler's export data. If the x/tools dependency ever becomes
// available, each Analyzer here converts mechanically.
//
// Suppressions follow the staticcheck convention: a comment
//
//	//lint:ignore <analyzer> <justification>
//
// on the flagged line or the line directly above it silences that analyzer
// there. The justification is mandatory; an ignore without one is itself a
// diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check, the mirror of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	Name string // short lower-case identifier, used in //lint:ignore
	Doc  string // one-paragraph description of the invariant
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer, the mirror of
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Path      string // import path ("" for testdata packages)

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full suite in stable order. cmd/codecheck runs exactly
// this list.
func All() []*Analyzer {
	return []*Analyzer{DetMap, WallTime, BitMask, AtomicHandle, ErrDrop, DocComment}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to one loaded package and returns the surviving
// diagnostics, sorted by position, after applying //lint:ignore
// suppressions. Malformed ignores (no justification, unknown analyzer) are
// reported as diagnostics themselves so they cannot rot silently.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Path:      pkg.ImportPath,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	malformed := applySuppressions(pkg, &diags)
	diags = append(diags, malformed...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	line      int    // line the directive governs (its own line)
	analyzers string // comma-separated names or "*"
	justified bool
	pos       token.Pos
}

// applySuppressions filters *diags in place and returns extra diagnostics
// for malformed directives.
func applySuppressions(pkg *Package, diags *[]Diagnostic) []Diagnostic {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	// file -> line -> directives on that line
	index := map[string]map[int][]ignoreDirective{}
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				d := ignoreDirective{
					line:      pkg.Fset.Position(c.Pos()).Line,
					justified: len(fields) >= 2,
					pos:       c.Pos(),
				}
				if len(fields) >= 1 {
					d.analyzers = fields[0]
				}
				file := pkg.Fset.Position(c.Pos()).Filename
				if !d.justified {
					malformed = append(malformed, Diagnostic{
						Pos:      pkg.Fset.Position(c.Pos()),
						Analyzer: "ignore",
						Message:  "//lint:ignore needs an analyzer name and a justification",
					})
					continue
				}
				if d.analyzers != "*" {
					for _, n := range strings.Split(d.analyzers, ",") {
						if !known[n] {
							malformed = append(malformed, Diagnostic{
								Pos:      pkg.Fset.Position(c.Pos()),
								Analyzer: "ignore",
								Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", n),
							})
						}
					}
				}
				if index[file] == nil {
					index[file] = map[int][]ignoreDirective{}
				}
				index[file][d.line] = append(index[file][d.line], d)
			}
		}
	}

	matches := func(d ignoreDirective, analyzer string) bool {
		if !d.justified {
			return false
		}
		if d.analyzers == "*" {
			return true
		}
		for _, n := range strings.Split(d.analyzers, ",") {
			if n == analyzer {
				return true
			}
		}
		return false
	}

	kept := (*diags)[:0]
	for _, dg := range *diags {
		suppressed := false
		for _, line := range []int{dg.Pos.Line, dg.Pos.Line - 1} {
			for _, dir := range index[dg.Pos.Filename][line] {
				if matches(dir, dg.Analyzer) {
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, dg)
		}
	}
	*diags = kept
	return malformed
}

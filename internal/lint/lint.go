// Package lint is the repository's custom static-analysis suite: six
// analyzers that encode the simulator's correctness invariants — run-to-run
// determinism, way-bitmap discipline, metrics atomicity, error hygiene and
// godoc coverage — as machine-checked rules, plus the loader and runner
// behind cmd/codecheck.
//
// The container this repository grows in has no module proxy access, so the
// suite cannot depend on golang.org/x/tools/go/analysis. Instead this
// package is a deliberate, minimal mirror of that API (Analyzer, Pass,
// Diagnostic, an analysistest-style "// want" harness) built only on the
// standard library: packages are loaded with `go list -export` and
// type-checked from source with go/types, import resolution going through
// the compiler's export data. If the x/tools dependency ever becomes
// available, each Analyzer here converts mechanically.
//
// Suppressions follow the staticcheck convention: a comment
//
//	//lint:ignore <analyzer> <justification>
//
// on the flagged line or the line directly above it silences that analyzer
// there. The justification is mandatory; an ignore without one is itself a
// diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check, the mirror of
// golang.org/x/tools/go/analysis.Analyzer. Exactly one of Run (per-package,
// syntactic/type-based) and RunModule (whole-module, interprocedural — gets
// the call graph) must be set.
type Analyzer struct {
	Name      string // short lower-case identifier, used in //lint:ignore
	Doc       string // one-paragraph description of the invariant
	Run       func(*Pass) error
	RunModule func(*ModulePass) error
}

// Pass carries one type-checked package through one analyzer, the mirror of
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Path      string // import path ("" for testdata packages)

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, already resolved to a file position. Chain
// carries interprocedural evidence when the analyzer has it (puritycheck's
// entry-point-to-sink path). Suppressed findings are kept — flagged, with
// the directive's justification — so machine consumers (-json) can audit
// what the ignores hide; the text output and the exit code skip them.
// Warning-severity findings (fingerprintcomplete's wasted-key-entropy
// direction) are advisory: reported in every output form but never
// blocking, and never baseline material.
type Diagnostic struct {
	Pos           token.Position
	Analyzer      string
	Message       string
	Chain         []ChainEntry
	Warning       bool // advisory severity: reported, never blocking
	Suppressed    bool
	Justification string // the //lint:ignore justification, when suppressed
	Baselined     bool   // matched an accepted-debt entry in the committed baseline
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// ModulePass carries the whole loaded module through one interprocedural
// analyzer: every package, plus the call graph built over them.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	Graph    *CallGraph

	diags *[]Diagnostic
}

// ReportAt records a module-level diagnostic at an already-resolved
// position, with optional interprocedural evidence.
func (mp *ModulePass) ReportAt(pos token.Position, chain []ChainEntry, format string, args ...any) {
	*mp.diags = append(*mp.diags, Diagnostic{
		Pos:      pos,
		Analyzer: mp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// WarnAt records an advisory (non-blocking) module-level diagnostic.
func (mp *ModulePass) WarnAt(pos token.Position, chain []ChainEntry, format string, args ...any) {
	*mp.diags = append(*mp.diags, Diagnostic{
		Pos:      pos,
		Analyzer: mp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
		Warning:  true,
	})
}

// All returns the full suite in stable order. cmd/codecheck runs exactly
// this list.
func All() []*Analyzer {
	return []*Analyzer{
		DetMap, WallTime, BitMask, AtomicHandle, ErrDrop, DocComment,
		Exhaustive, PurityCheck, LockGuard, HotAlloc, WakeupSafe,
		FingerprintComplete, SharedCapture,
	}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to one loaded package and returns the surviving
// diagnostics, sorted by position, after applying //lint:ignore
// suppressions (suppressed findings are dropped — the historical contract;
// RunModule keeps them flagged instead). Malformed ignores (no
// justification, unknown analyzer) are reported as diagnostics themselves
// so they cannot rot silently.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	all, err := RunModule([]*Package{pkg}, analyzers)
	if err != nil {
		return nil, err
	}
	kept := all[:0]
	for _, d := range all {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// RunModule applies the analyzers to every loaded package at once:
// per-package analyzers run package by package, interprocedural analyzers
// run over the call graph built across all of them. It returns every
// diagnostic — suppressed ones included, marked with the directive's
// justification — sorted by position.
func RunModule(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pkgDiags, err := runPackagePass(pkg, a)
			if err != nil {
				return nil, err
			}
			diags = append(diags, pkgDiags...)
		}
	}
	moduleDiags, err := runModulePasses(pkgs, analyzers, nil)
	if err != nil {
		return nil, err
	}
	diags = append(diags, moduleDiags...)
	return finishDiagnostics(pkgs, diags), nil
}

// runPackagePass applies one per-package analyzer to one package.
func runPackagePass(pkg *Package, a *Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Path:      pkg.ImportPath,
		diags:     &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
	}
	return diags, nil
}

// runModulePasses builds the call graph (when needed) and applies the
// interprocedural analyzers. timeOne, when non-nil, wraps each analyzer
// run for wall-time accounting.
func runModulePasses(pkgs []*Package, analyzers []*Analyzer, timeOne func(name string, run func() error) error) ([]Diagnostic, error) {
	var moduleAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			moduleAnalyzers = append(moduleAnalyzers, a)
		}
	}
	if len(moduleAnalyzers) == 0 {
		return nil, nil
	}
	if timeOne == nil {
		timeOne = func(_ string, run func() error) error { return run() }
	}
	var diags []Diagnostic
	var graph *CallGraph
	if err := timeOne("(call graph)", func() error {
		graph = BuildCallGraph(pkgs)
		return nil
	}); err != nil {
		return nil, err
	}
	for _, a := range moduleAnalyzers {
		mp := &ModulePass{Analyzer: a, Pkgs: pkgs, Graph: graph, diags: &diags}
		if err := timeOne(a.Name, func() error { return a.RunModule(mp) }); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
	}
	return diags, nil
}

// finishDiagnostics applies suppression directives and the canonical
// position sort — the shared tail of RunModule and RunModuleParallel.
func finishDiagnostics(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	var malformed []Diagnostic
	for _, pkg := range pkgs {
		malformed = append(malformed, markSuppressions(pkg, diags)...)
	}
	diags = append(diags, malformed...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	line          int    // line the directive governs (its own line)
	analyzers     string // comma-separated names or "*"
	justification string
	justified     bool
	pos           token.Position
}

// parseIgnores extracts every //lint:ignore directive from pkg, plus
// diagnostics for the malformed ones (missing justification, unknown
// analyzer name).
func parseIgnores(pkg *Package) (directives []ignoreDirective, malformed []Diagnostic) {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				d := ignoreDirective{
					line:      pkg.Fset.Position(c.Pos()).Line,
					justified: len(fields) >= 2,
					pos:       pkg.Fset.Position(c.Pos()),
				}
				if len(fields) >= 1 {
					d.analyzers = fields[0]
				}
				if len(fields) >= 2 {
					d.justification = strings.Join(fields[1:], " ")
				}
				if !d.justified {
					malformed = append(malformed, Diagnostic{
						Pos:      d.pos,
						Analyzer: "ignore",
						Message:  "//lint:ignore needs an analyzer name and a justification",
					})
					continue
				}
				if d.analyzers != "*" {
					for _, n := range strings.Split(d.analyzers, ",") {
						if !known[n] {
							malformed = append(malformed, Diagnostic{
								Pos:      d.pos,
								Analyzer: "ignore",
								Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", n),
							})
						}
					}
				}
				directives = append(directives, d)
			}
		}
	}
	return directives, malformed
}

// markSuppressions flags diagnostics governed by a justified //lint:ignore
// directive (on the diagnostic's line or the line above) and returns extra
// diagnostics for malformed directives.
func markSuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	directives, malformed := parseIgnores(pkg)
	// file -> line -> directives on that line
	index := map[string]map[int][]ignoreDirective{}
	for _, d := range directives {
		if index[d.pos.Filename] == nil {
			index[d.pos.Filename] = map[int][]ignoreDirective{}
		}
		index[d.pos.Filename][d.line] = append(index[d.pos.Filename][d.line], d)
	}

	matches := func(d ignoreDirective, analyzer string) bool {
		if !d.justified {
			return false
		}
		if d.analyzers == "*" {
			return true
		}
		for _, n := range strings.Split(d.analyzers, ",") {
			if n == analyzer {
				return true
			}
		}
		return false
	}

	for i := range diags {
		dg := &diags[i]
		if dg.Suppressed {
			continue
		}
		for _, line := range []int{dg.Pos.Line, dg.Pos.Line - 1} {
			for _, dir := range index[dg.Pos.Filename][line] {
				if matches(dir, dg.Analyzer) {
					dg.Suppressed = true
					dg.Justification = dir.justification
				}
			}
		}
	}
	return malformed
}

// IgnoreEntry is one //lint:ignore directive, for the codecheck -ignores
// audit listing.
type IgnoreEntry struct {
	Pos           token.Position `json:"-"`
	File          string         `json:"file"`
	Line          int            `json:"line"`
	Analyzers     string         `json:"analyzers"`
	Justification string         `json:"justification"`
}

// Ignores lists every suppression directive in the given packages, sorted
// by file and line — the audit trail behind `codecheck -ignores`. Malformed
// directives appear with an empty justification; the normal run already
// reports them as findings.
func Ignores(pkgs []*Package) []IgnoreEntry {
	var entries []IgnoreEntry
	for _, pkg := range pkgs {
		directives, _ := parseIgnores(pkg)
		for _, d := range directives {
			entries = append(entries, IgnoreEntry{
				Pos:           d.pos,
				File:          d.pos.Filename,
				Line:          d.pos.Line,
				Analyzers:     d.analyzers,
				Justification: d.justification,
			})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].File != entries[j].File {
			return entries[i].File < entries[j].File
		}
		return entries[i].Line < entries[j].Line
	})
	return entries
}

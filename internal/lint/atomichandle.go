package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicHandle extends the race detector to paths tests never execute: if
// any code in a package accesses a struct field through sync/atomic
// (atomic.AddUint64(&s.n, 1), atomic.LoadUint64(&s.n)...), then every
// other access to that field must also be atomic. A single plain read or
// write tears the protocol — the race detector only catches it if a test
// happens to drive both paths concurrently, which the metrics fan-out
// harnesses often don't.
var AtomicHandle = &Analyzer{
	Name: "atomichandle",
	Doc:  "detects mixed atomic/plain access to the same struct field: once a field is touched via sync/atomic anywhere in the package, plain accesses to it are flagged",
	Run:  runAtomicHandle,
}

// atomicOps are the sync/atomic package-level accessors (by prefix).
var atomicOpPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"}

func isAtomicOp(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, p := range atomicOpPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			return true
		}
	}
	return false
}

func runAtomicHandle(pass *Pass) error {
	atomicFields := map[*types.Var]bool{}      // fields accessed via sync/atomic
	sanctioned := map[*ast.SelectorExpr]bool{} // the &-operands of those calls

	// Pass 1: collect fields whose address feeds a sync/atomic call.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || !isAtomicOp(fn) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if field := fieldOf(pass, sel); field != nil {
					atomicFields[field] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other access to those fields must be atomic.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			field := fieldOf(pass, sel)
			if field == nil || !atomicFields[field] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"field %s is accessed with sync/atomic elsewhere in this package; this plain access races with it — use the matching atomic.%s call",
				field.Name(), suggestedAtomicOp(field))
			return true
		})
	}
	return nil
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	v, _ := selection.Obj().(*types.Var)
	return v
}

// suggestedAtomicOp names the Load/Store family matching the field's type,
// purely to make the message actionable.
func suggestedAtomicOp(field *types.Var) string {
	if b, ok := field.Type().Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Uint64:
			return "LoadUint64/StoreUint64"
		case types.Int64:
			return "LoadInt64/StoreInt64"
		case types.Uint32:
			return "LoadUint32/StoreUint32"
		case types.Int32:
			return "LoadInt32/StoreInt32"
		}
	}
	return "Load/Store"
}

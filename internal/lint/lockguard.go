package lint

import (
	"go/ast"
	"go/types"
)

// LockGuard enforces consistent mutex discipline on struct fields: if any
// method of a type accesses a field while holding the struct's own
// sync.Mutex/sync.RWMutex, then every method must hold it for that field.
// The seeding case is internal/metrics' Registry, whose instrument maps are
// guarded by `mu`: one forgotten Lock in a rarely-exercised method is a
// data race the detector only sees if a test happens to drive both paths
// concurrently.
//
// The lock-region model is linear and per-method: a call to recv.mu.Lock /
// RLock opens a region, recv.mu.Unlock / RUnlock closes it, and a deferred
// unlock leaves the region open to the end of the method (the dominant
// pattern in this repository). Function literals inside a method are
// skipped — a closure's execution time is not tied to the lock state at its
// definition site. Fields never accessed under the lock are unconstrained.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "a struct field accessed under the struct's own sync.Mutex/RWMutex in any method must be accessed under it in every method",
	Run:  runLockGuard,
}

// lockFieldAccess is one access to a guarded candidate field.
type lockFieldAccess struct {
	field  *types.Var
	sel    *ast.SelectorExpr
	method string
	locked bool
}

func runLockGuard(pass *Pass) error {
	// Struct types declared in this package that embed a mutex by value.
	guards := map[*types.Named]*types.Var{} // owner type -> its mutex field
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if isMutexType(st.Field(i).Type()) {
				guards[named] = st.Field(i)
				break // first mutex is the guard; multi-lock structs are out of scope
			}
		}
	}
	if len(guards) == 0 {
		return nil
	}

	accesses := map[*types.Named][]lockFieldAccess{}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			owner, recvObj := methodOwner(pass, fd)
			mutexField, guarded := guards[owner]
			if !guarded || recvObj == nil {
				continue
			}
			collectLockAccesses(pass, fd, owner, recvObj, mutexField, accesses)
		}
	}

	// Diagnostics are sorted by position in Run, so iteration order over
	// the owner map does not reach the output.
	for owner, accs := range accesses {
		lockedFields := map[*types.Var]bool{}
		for _, a := range accs {
			if a.locked {
				lockedFields[a.field] = true
			}
		}
		for _, a := range accs {
			if a.locked || !lockedFields[a.field] {
				continue
			}
			pass.Reportf(a.sel.Sel.Pos(),
				"field %s.%s is accessed under %s.%s elsewhere; this access in %s does not hold the lock",
				owner.Obj().Name(), a.field.Name(),
				owner.Obj().Name(), guards[owner].Name(), a.method)
		}
	}
	return nil
}

// isMutexType reports sync.Mutex / sync.RWMutex (by value).
func isMutexType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// methodOwner resolves fd's receiver to the named type it belongs to and
// the receiver variable object.
func methodOwner(pass *Pass, fd *ast.FuncDecl) (*types.Named, *types.Var) {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named, sig.Recv()
}

// collectLockAccesses walks fd's body in source order, tracking the linear
// lock depth of recv.<mutexField> and recording every access to the other
// fields of owner through the receiver.
func collectLockAccesses(pass *Pass, fd *ast.FuncDecl, owner *types.Named, recv *types.Var, mutexField *types.Var, out map[*types.Named][]lockFieldAccess) {
	depth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures: lock state at definition is meaningless
		case *ast.DeferStmt:
			// A deferred unlock keeps the region open; a deferred lock
			// would be nonsense. Either way the defer body is not part of
			// the linear flow.
			return false
		case *ast.CallExpr:
			if kind := mutexOpOn(pass, n, recv, mutexField); kind != 0 {
				depth += kind
				return false
			}
		case *ast.SelectorExpr:
			field := fieldOf(pass, n)
			if field == nil || field == mutexField {
				break
			}
			if !receiverField(pass, n, recv, owner) {
				break
			}
			out[owner] = append(out[owner], lockFieldAccess{
				field:  field,
				sel:    n,
				method: fd.Name.Name,
				locked: depth > 0,
			})
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// mutexOpOn reports +1 for recv.<mu>.Lock/RLock, -1 for Unlock/RUnlock, 0
// otherwise.
func mutexOpOn(pass *Pass, call *ast.CallExpr, recv *types.Var, mutexField *types.Var) int {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	var delta int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		delta = 1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return 0
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	if fieldOf(pass, inner) != mutexField {
		return 0
	}
	if id, ok := ast.Unparen(inner.X).(*ast.Ident); !ok || pass.TypesInfo.Uses[id] != recv {
		return 0
	}
	return delta
}

// receiverField reports whether sel is recv.<field> — a direct access to a
// field of the guarded struct through the method receiver.
func receiverField(pass *Pass, sel *ast.SelectorExpr, recv *types.Var, owner *types.Named) bool {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	return pass.TypesInfo.Uses[id] == recv
}

// Package fixture exists for the lint suite's own tests: it declares
// exported mask-register fields so the bitmask analyzer's testdata can
// exercise the cross-package-write rule against a real second package.
package fixture

import "l15cache/internal/bitmap"

// Regs models a component that (unwisely) exposes its mask registers —
// the anti-pattern whose *writes* the bitmask analyzer polices.
type Regs struct {
	OW bitmap.Bitmap
	GV []bitmap.Bitmap
}

// SetOW is the sanctioned write path: the owning package enforces the ζ
// bound itself.
func (r *Regs) SetOW(b bitmap.Bitmap, ways int) {
	r.OW = b.Intersect(bitmap.FirstN(ways))
}

package lint

// Reaching definitions over the cfg.go graph: which assignments of a
// variable can still be "the" value at a given use. This is the pass the
// wakeupsafe analyzer leans on (is the cycle handed to AdvanceTo derived
// from an unclamped NextWakeup result?) and the hotalloc append heuristic
// consults (does a fresh make/nil definition reach this self-append, or
// only reused scratch?).
//
// Granularity is the statement: each block's node list is interpreted in
// order with gen/kill sets, block inputs join over predecessors, and a
// standard worklist iterates to fixpoint. Definitions tracked are plain
// assignments (including op-assignments and :=), var declarations,
// inc/dec, range variables, and the function's own parameters/receiver
// (seeded in the entry block with a nil RHS).
//
// The pass is field-sensitive one level deep in the kill lattice:
// `cfg.Fingerprint = rhs` generates a Def with Field "Fingerprint" that
// kills only earlier definitions of the same (or a nested) field path,
// while a whole-variable assignment kills every field definition of that
// variable. Writes through pointer bases are not tracked (aliasing would
// make kills unsound), which is conservative: an untracked def simply
// never appears, and the analyses treat "no defining RHS" as unknown.
//
// Writes to captured variables inside `go` statements and deferred
// function literals are tracked as weak definitions: they are generated
// at the spawn site (or, for defers, at the Exit block where the call
// replays) without killing anything, because the write races with — or
// runs after — the rest of the function, so the prior value may still be
// observed. Writes inside other nested function literals remain
// untracked, as before.

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Def is one reaching definition: Var (or the Field path on Var) acquires
// a value at Site; RHS is the defining expression when the statement pairs
// names with values one-to-one (nil for parameters, multi-value
// assignments, range variables and zero-value declarations). Weak
// definitions come from concurrent or deferred writes inside function
// literals: they are generated without killing earlier definitions.
type Def struct {
	Var   *types.Var
	Field string // dotted field path ("" = the whole variable)
	Site  ast.Node
	RHS   ast.Expr
	Weak  bool
}

type defSet map[*Def]bool

// ReachingDefs is the fixpoint result for one function.
type ReachingDefs struct {
	cfg    *CFG
	info   *types.Info
	in     map[*Block]defSet
	defsAt map[ast.Node][]*Def // memo: stable *Def identity across fixpoint rounds
}

// ReachingDefs computes the reaching-definitions solution for the
// function whose body this graph was built from. decl supplies the
// parameter/receiver/result declarations seeded in the entry block; it
// may be nil for bodies without one (function literals).
func (c *CFG) ReachingDefs(info *types.Info, decl *ast.FuncDecl) *ReachingDefs {
	rd := &ReachingDefs{cfg: c, info: info, in: map[*Block]defSet{}}

	entryDefs := defSet{}
	if decl != nil {
		seedField := func(fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						entryDefs[&Def{Var: v, Site: f}] = true
					}
				}
			}
		}
		if decl.Recv != nil {
			seedField(decl.Recv)
		}
		if decl.Type != nil {
			seedField(decl.Type.Params)
			seedField(decl.Type.Results)
		}
	}

	// out[b] caches the block's computed output set.
	out := map[*Block]defSet{}
	for _, blk := range c.Blocks {
		rd.in[blk] = defSet{}
		out[blk] = defSet{}
	}
	for d := range entryDefs {
		rd.in[c.Entry][d] = true
	}

	// Worklist in deterministic index order.
	work := make([]*Block, len(c.Blocks))
	copy(work, c.Blocks)
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		newIn := defSet{}
		if blk == c.Entry {
			for d := range entryDefs {
				newIn[d] = true
			}
		}
		for _, p := range blk.Preds {
			if !p.Live {
				// A dead block can still have an edge out (dead code
				// falling into a label); its definitions never execute.
				continue
			}
			for d := range out[p] {
				newIn[d] = true
			}
		}
		rd.in[blk] = newIn
		newOut := rd.apply(newIn, blk.Nodes, 0, len(blk.Nodes))
		if !sameDefSet(newOut, out[blk]) {
			out[blk] = newOut
			for _, s := range blk.Succs {
				work = append(work, s)
			}
		}
	}
	return rd
}

func sameDefSet(a, b defSet) bool {
	if len(a) != len(b) {
		return false
	}
	for d := range a {
		if !b[d] {
			return false
		}
	}
	return true
}

// apply interprets nodes[from:to] over set, returning the new set.
func (rd *ReachingDefs) apply(set defSet, nodes []ast.Node, from, to int) defSet {
	cur := defSet{}
	for d := range set {
		cur[d] = true
	}
	for i := from; i < to; i++ {
		for _, def := range rd.nodeDefs(nodes[i]) {
			if !def.Weak {
				for d := range cur {
					if d.Var != def.Var {
						continue
					}
					// A whole-variable def kills every field def; a field
					// def kills the same path and anything nested below it,
					// but never the whole-variable def (the rest of the
					// struct keeps its value).
					if def.Field == "" || d.Field == def.Field ||
						strings.HasPrefix(d.Field, def.Field+".") {
						delete(cur, d)
					}
				}
			}
			cur[def] = true
		}
	}
	return cur
}

// nodeDefs returns the definitions a node generates, memoized so a
// re-interpreted block yields identical *Def identities across fixpoint
// rounds.
func (rd *ReachingDefs) nodeDefs(n ast.Node) []*Def {
	if rd.defsAt == nil {
		rd.defsAt = map[ast.Node][]*Def{}
	}
	if defs, ok := rd.defsAt[n]; ok {
		return defs
	}
	var defs []*Def
	addIdent := func(id *ast.Ident, site ast.Node, rhs ast.Expr) {
		var v *types.Var
		if obj, ok := rd.info.Defs[id].(*types.Var); ok {
			v = obj
		} else if obj, ok := rd.info.Uses[id].(*types.Var); ok {
			v = obj
		}
		if v == nil {
			return
		}
		defs = append(defs, &Def{Var: v, Site: site, RHS: rhs})
	}
	addLhs := func(lhs ast.Expr, site ast.Node, rhs ast.Expr) {
		lhs = ast.Unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok {
			addIdent(id, site, rhs)
			return
		}
		// Field writes on a non-pointer base variable become field-level
		// definitions; index/star/pointer-base writes are not variable
		// defs (aliasing would make their kills unsound).
		if v, path, ok := fieldWritePath(rd.info, lhs); ok {
			defs = append(defs, &Def{Var: v, Field: path, Site: site, RHS: rhs})
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			var rhs ast.Expr
			if len(n.Lhs) == len(n.Rhs) {
				rhs = n.Rhs[i]
			}
			addLhs(lhs, n, rhs)
		}
	case *ast.IncDecStmt:
		addLhs(n.X, n, nil)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					}
					addIdent(name, vs, rhs)
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := n.Key.(*ast.Ident); ok {
			addIdent(id, n, nil)
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			addIdent(id, n, nil)
		}
	case *ast.GoStmt:
		defs = append(defs, rd.litWeakDefs(n.Call)...)
	case *ast.CallExpr:
		// A bare call only appears as a block node when a deferred call is
		// replayed into the Exit block (or as a decomposed condition
		// operand); either way, writes to outer variables inside a literal
		// callee are weak definitions here.
		defs = append(defs, rd.litWeakDefs(n)...)
	}
	rd.defsAt[n] = defs
	return defs
}

// litWeakDefs collects weak definitions for variables declared outside a
// function literal that the literal's body assigns — the conservative
// model for `go func(){...}()` and deferred literals, whose writes race
// with or follow the enclosing function's statements.
func (rd *ReachingDefs) litWeakDefs(call *ast.CallExpr) []*Def {
	lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return nil
	}
	outer := func(v *types.Var) bool {
		return v != nil && (v.Pos() < lit.Pos() || v.Pos() > lit.End())
	}
	var defs []*Def
	addLhs := func(lhs ast.Expr, site ast.Node) {
		lhs = ast.Unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok {
			if v, ok := rd.info.Uses[id].(*types.Var); ok && outer(v) {
				defs = append(defs, &Def{Var: v, Site: site, Weak: true})
			}
			return
		}
		if v, path, ok := fieldWritePath(rd.info, lhs); ok && outer(v) {
			defs = append(defs, &Def{Var: v, Field: path, Site: site, Weak: true})
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				addLhs(lhs, n)
			}
		case *ast.IncDecStmt:
			addLhs(n.X, n)
		}
		return true
	})
	return defs
}

// fieldWritePath decomposes a pure selector chain lvalue (base.F or
// base.F.G, no indexing, no dereference) rooted at a non-pointer local
// variable into (variable, dotted path). It reports false for anything
// else — those writes are untracked.
func fieldWritePath(info *types.Info, lhs ast.Expr) (*types.Var, string, bool) {
	var names []string
	for {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			break
		}
		names = append([]string{sel.Sel.Name}, names...)
		lhs = sel.X
	}
	if len(names) == 0 {
		return nil, "", false
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil, "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		if v, ok = info.Defs[id].(*types.Var); !ok {
			return nil, "", false
		}
	}
	if _, isPtr := types.Unalias(v.Type()).(*types.Pointer); isPtr {
		return nil, "", false
	}
	return v, strings.Join(names, "."), true
}

// DefsReaching returns the whole-variable definitions of use's variable
// that can reach it, in source order. It returns nil when use does not
// resolve to a tracked variable or lies outside the graph (e.g. inside a
// nested function literal). Field-level definitions are not included —
// FieldDefsReaching queries those.
func (rd *ReachingDefs) DefsReaching(use *ast.Ident) []*Def {
	return rd.defsReaching(use, func(d *Def) bool { return d.Field == "" })
}

// FieldDefsReaching returns the definitions that can reach use for the
// dotted field path on use's variable: definitions of the exact path, of
// a covering prefix (a def of "A" covers a query for "A.B"), and of the
// whole variable.
func (rd *ReachingDefs) FieldDefsReaching(use *ast.Ident, field string) []*Def {
	return rd.defsReaching(use, func(d *Def) bool {
		return d.Field == "" || d.Field == field || strings.HasPrefix(field, d.Field+".")
	})
}

func (rd *ReachingDefs) defsReaching(use *ast.Ident, keep func(*Def) bool) []*Def {
	v, ok := rd.info.Uses[use].(*types.Var)
	if !ok {
		return nil
	}
	blk := rd.cfg.ContainingBlock(use.Pos())
	if blk == nil {
		return nil
	}
	// Interpret the block up to (not including) the node containing the
	// use: the use observes the state before its own statement executes.
	upto := len(blk.Nodes)
	for i, n := range blk.Nodes {
		if n.Pos() <= use.Pos() && use.Pos() <= n.End() {
			upto = i
			break
		}
	}
	set := rd.apply(rd.in[blk], blk.Nodes, 0, upto)
	var defs []*Def
	for d := range set {
		if d.Var == v && keep(d) {
			defs = append(defs, d)
		}
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].Site.Pos() < defs[j].Site.Pos() })
	return defs
}

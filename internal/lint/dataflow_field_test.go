package lint

// Tests for the field-sensitive and weak-definition extensions of the
// reaching-definitions pass: go-statement and deferred-literal writes as
// gen-without-kill definitions, the field kill lattice (whole kills
// field, field kills same path and nested prefixes, sibling fields are
// independent), joins across dead predecessors at field granularity, and
// the empty-select CFG shape.

import "testing"

func TestGoLiteralWriteIsWeak(t *testing.T) {
	cfg, fd, info := buildTestCFG(t, `package p
func f() int {
	x := 0
	go func() {
		x = 1
	}()
	return x
}`, "f")
	rd := cfg.ReachingDefs(info, fd)
	ret := findIdent(t, fd, "x", 2)
	defs := rd.DefsReaching(ret)
	if len(defs) != 2 {
		t.Fatalf("return sees %d defs, want 2 (the goroutine write must be generated without killing x := 0)", len(defs))
	}
	weak, strong := 0, 0
	for _, d := range defs {
		if d.Weak {
			weak++
		} else {
			strong++
			if d.RHS == nil || exprText(d.RHS) != "0" {
				t.Errorf("surviving strong def is not x := 0")
			}
		}
	}
	if weak != 1 || strong != 1 {
		t.Errorf("got %d weak / %d strong defs, want 1 / 1", weak, strong)
	}
}

func TestGoLiteralFieldWriteIsWeak(t *testing.T) {
	cfg, fd, info := buildTestCFG(t, `package p
type conf struct{ A, B int }
func f() int {
	var c conf
	c.A = 1
	go func() {
		c.A = 2
	}()
	return c.A
}`, "f")
	rd := cfg.ReachingDefs(info, fd)
	ret := findIdent(t, fd, "c", 3)
	defs := rd.FieldDefsReaching(ret, "A")
	// var c (whole), c.A = 1 (strong field), c.A = 2 (weak field): the
	// weak write must not have killed the strong one.
	if len(defs) != 3 {
		t.Fatalf("return sees %d defs for c.A, want 3", len(defs))
	}
	weakField := false
	for _, d := range defs {
		if d.Weak && d.Field == "A" {
			weakField = true
		}
	}
	if !weakField {
		t.Error("goroutine's c.A write not tracked as a weak field def")
	}
}

func TestDeferredLiteralWriteReachesExitOnly(t *testing.T) {
	cfg, fd, info := buildTestCFG(t, `package p
func f() int {
	x := 0
	defer func() {
		x = 5
	}()
	return x
}`, "f")
	rd := cfg.ReachingDefs(info, fd)

	// The deferred write runs after the return expression is evaluated,
	// so it must not reach the return's use...
	ret := findIdent(t, fd, "x", 2)
	defs := rd.DefsReaching(ret)
	if len(defs) != 1 {
		t.Fatalf("return sees %d defs, want 1 (the deferred write runs later)", len(defs))
	}
	if defs[0].Weak {
		t.Error("the def reaching the return is the deferred write, not x := 0")
	}

	// ...but the replayed call in the Exit block must generate it there,
	// where function-exit state is observed.
	exitOut := rd.apply(rd.in[cfg.Exit], cfg.Exit.Nodes, 0, len(cfg.Exit.Nodes))
	foundWeak := false
	for d := range exitOut {
		if d.Weak && d.Var != nil && d.Var.Name() == "x" {
			foundWeak = true
		}
	}
	if !foundWeak {
		t.Error("deferred literal's write missing from the Exit block's state")
	}
}

func TestFieldKillLattice(t *testing.T) {
	// Whole-variable assignment kills field defs.
	cfg, fd, info := buildTestCFG(t, `package p
type conf struct{ A, B int }
func f() int {
	var c conf
	c.A = 1
	c = conf{}
	return c.A
}`, "f")
	rd := cfg.ReachingDefs(info, fd)
	ret := findIdent(t, fd, "c", 3)
	defs := rd.FieldDefsReaching(ret, "A")
	if len(defs) != 1 {
		t.Fatalf("after whole-var assignment, %d defs reach c.A, want 1", len(defs))
	}
	if defs[0].Field != "" {
		t.Errorf("surviving def has field path %q, want the whole-var assignment", defs[0].Field)
	}

	// Same-path field def kills the earlier one; siblings are untouched.
	cfg, fd, info = buildTestCFG(t, `package p
type conf struct{ A, B int }
func g() int {
	var c conf
	c.A = 1
	c.B = 2
	c.A = 3
	return c.A + c.B
}`, "g")
	rd = cfg.ReachingDefs(info, fd)
	ret = findIdent(t, fd, "c", 4)
	defs = rd.FieldDefsReaching(ret, "A")
	// var c (whole) + c.A = 3; c.A = 1 killed, c.B = 2 not an A def.
	if len(defs) != 2 {
		t.Fatalf("%d defs reach c.A, want 2", len(defs))
	}
	for _, d := range defs {
		if d.Field == "A" && (d.RHS == nil || exprText(d.RHS) != "3") {
			t.Errorf("surviving c.A def is not c.A = 3")
		}
	}
	bdefs := rd.FieldDefsReaching(findIdent(t, fd, "c", 5), "B")
	if len(bdefs) != 2 {
		t.Fatalf("%d defs reach c.B, want 2 (sibling writes must not kill B)", len(bdefs))
	}
}

func TestFieldPrefixKill(t *testing.T) {
	cfg, fd, info := buildTestCFG(t, `package p
type inner struct{ X int }
type outer struct{ A inner }
func f() int {
	var o outer
	o.A.X = 1
	o.A = inner{}
	return o.A.X
}`, "f")
	rd := cfg.ReachingDefs(info, fd)
	ret := findIdent(t, fd, "o", 3)
	defs := rd.FieldDefsReaching(ret, "A.X")
	// var o (whole) + o.A (covering prefix); o.A.X = 1 killed by the
	// prefix write.
	if len(defs) != 2 {
		t.Fatalf("%d defs reach o.A.X, want 2", len(defs))
	}
	for _, d := range defs {
		if d.Field == "A.X" {
			t.Error("nested field def survived its covering-prefix assignment")
		}
	}
}

func TestFieldDefsAcrossDeadPredecessor(t *testing.T) {
	cfg, fd, info := buildTestCFG(t, `package p
type conf struct{ A int }
func one() int { return 1 }
func two() int { return 2 }
func f() int {
	var c conf
	c.A = one()
	goto L
	c.A = two()
L:
	return c.A
}`, "f")
	rd := cfg.ReachingDefs(info, fd)
	ret := findIdent(t, fd, "c", 3)
	defs := rd.FieldDefsReaching(ret, "A")
	// var c (whole) + c.A = one(); the dead c.A = two() must not join in.
	if len(defs) != 2 {
		t.Fatalf("%d defs reach c.A, want 2 (the dead write must not flow)", len(defs))
	}
	// The surviving field def is the live one, before the goto.
	for _, d := range defs {
		if d.Field == "A" && d.Site.Pos() > findIdent(t, fd, "L", 0).Pos() {
			t.Error("dead c.A = two() def reached the label's use")
		}
	}
}

func TestCFGEmptySelectFallsThrough(t *testing.T) {
	// select {} parks forever at runtime; the CFG deliberately
	// over-approximates it as falling through (only adding edges never
	// hides a path), so the code after it must stay live.
	cfg, fd, info := buildTestCFG(t, `package p
func f() int {
	x := 0
	select {}
	x = 1
	return x
}`, "f")
	rd := cfg.ReachingDefs(info, fd)
	ret := findIdent(t, fd, "x", 2)
	defs := rd.DefsReaching(ret)
	if len(defs) != 1 {
		t.Fatalf("return sees %d defs, want 1 (x = 1 kills x := 0 on the fall-through path)", len(defs))
	}
	blk := cfg.ContainingBlock(ret.Pos())
	if blk == nil || !blk.Live {
		t.Error("statement after select{} not live; the CFG must over-approximate, not truncate")
	}
}

package lint

// WakeupSafe machine-checks the kernel wakeup protocol of DESIGN.md §11,
// the contract the event-driven time-skipping kernel rests on (and that
// CI today only probes dynamically with byte-compare smoke runs):
//
//  1. every NextWakeup implementation must be *pure over its receiver* —
//     a wakeup probe that mutates state makes the probe itself advance
//     the simulation, so the events kernel diverges from the ticked one
//     the moment it asks. Receiver-field writes anywhere in the
//     transitive callee closure are reported with the full call chain,
//     and so are the puritycheck determinism sinks (wall-clock, global
//     rand, env/FS reads) — a wakeup computed from host state breaks
//     run-to-run determinism even if it mutates nothing;
//  2. every NextWakeup implementation must handle kernel.Never: an impl
//     that can never report "idle" silently forbids time-skipping for
//     the whole system. Referencing the Never constant (or ^uint64(0)),
//     or delegating to kernel.Earliest or another unit's NextWakeup,
//     counts as handling;
//  3. AdvanceTo callers must not pass a cycle derived from an
//     unvalidated NextWakeup: a raw wakeup may be Never (2^64-1), and
//     jumping there deadlocks the clock at the end of time. The
//     reaching-definitions pass traces the argument back to its
//     defining expressions; a NextWakeup result must pass through the
//     kernel.Earliest clamp (matched by callee name, so testdata and
//     future helper packages participate) before it may reach AdvanceTo.
//
// Like puritycheck, calls through function values are not resolvable and
// not treated as impure; facts propagate caller-ward over the module
// call graph so a write three helpers deep still surfaces on the
// protocol method that can reach it.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WakeupSafe is the wakeup-protocol analyzer.
var WakeupSafe = &Analyzer{
	Name:      "wakeupsafe",
	Doc:       "enforces the kernel wakeup protocol: NextWakeup implementations must be pure over their receiver (no field writes, no determinism sinks, full chains reported), must handle kernel.Never, and AdvanceTo callers must clamp NextWakeup-derived cycles with kernel.Earliest",
	RunModule: runWakeupSafe,
}

// isNextWakeupImpl reports whether node implements the wakeup probe:
// a method named NextWakeup with no parameters returning uint64.
func isNextWakeupImpl(node *CallNode) bool {
	if node.Decl == nil || node.Decl.Recv == nil || node.Decl.Name.Name != "NextWakeup" {
		return false
	}
	sig, ok := node.Fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	basic, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint64
}

func runWakeupSafe(mp *ModulePass) error {
	g := mp.Graph
	fs := NewFactSet(g)

	for _, id := range g.SortedIDs() {
		node := g.Nodes[id]
		if node.Decl == nil {
			continue
		}
		seedReceiverWriteFacts(fs, node)
		seedWakeupSinkFacts(fs, node)
	}
	fs.Propagate()

	for _, id := range g.SortedIDs() {
		node := g.Nodes[id]
		if isNextWakeupImpl(node) {
			reportWakeupImpurity(mp, fs, node)
			if !handlesNever(node.Pkg, node.Decl) {
				mp.ReportAt(node.Pkg.Fset.Position(node.Decl.Name.Pos()), nil,
					"%s never reports kernel.Never: an always-runnable unit forbids time-skipping for the whole system; return Never when idle, or suppress with the justification that the unit genuinely never idles",
					DisplayName(node.Fn))
			}
		}
		if node.Decl != nil {
			checkAdvanceToCalls(mp, node)
		}
	}
	return nil
}

// seedReceiverWriteFacts marks node if its body writes through its
// receiver (field assignment, indexed element write, inc/dec). Writes to
// plain locals are fine; rebinding the receiver variable itself only
// changes the local copy and is ignored.
func seedReceiverWriteFacts(fs *FactSet, node *CallNode) {
	fd := node.Decl
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	recv, ok := node.Pkg.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	if !ok {
		return
	}
	seedWrite := func(target ast.Expr, pos token.Pos) {
		if base := baseIdentOf(target); base != nil {
			if v, ok := objOf(node.Pkg, base).(*types.Var); ok && v == recv && target != base {
				fs.Seed(node.ID, Fact{
					Kind:   "state-write",
					Sink:   "write to receiver state (" + exprString(target) + ")",
					Origin: node.Pkg.Fset.Position(pos),
				})
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				seedWrite(ast.Unparen(lhs), lhs.Pos())
			}
		case *ast.IncDecStmt:
			seedWrite(ast.Unparen(n.X), n.X.Pos())
		case *ast.UnaryExpr:
			// &recv.field handed out lets the callee write it; treat the
			// exposure as a write (conservative, rare on probe paths).
			if n.Op == token.AND {
				seedWrite(ast.Unparen(n.X), n.Pos())
			}
		}
		return true
	})
}

// seedWakeupSinkFacts seeds the puritycheck determinism sinks without
// the runner/flight carve-outs: a wakeup probe may not consult the wall
// clock even in an exempted package.
func seedWakeupSinkFacts(fs *FactSet, node *CallNode) {
	g := fs.graph
	for _, edge := range node.Calls {
		callee := g.Nodes[edge.Callee]
		kind := classifySink(callee.Fn)
		if kind == "" {
			continue
		}
		fs.Seed(node.ID, Fact{
			Kind:   kind,
			Sink:   DisplayName(callee.Fn),
			Origin: node.Pkg.Fset.Position(edge.Pos),
		})
	}
}

// reportWakeupImpurity reports every state-write or sink fact held by a
// NextWakeup implementation, chain attached.
func reportWakeupImpurity(mp *ModulePass, fs *FactSet, node *CallNode) {
	for _, f := range fs.FactsOf(node.ID) {
		chain := fs.Chain(node.ID, f)
		switch f.Kind {
		case "state-write":
			mp.ReportAt(f.Origin, chain,
				"%s must be pure over its receiver but reaches a %s: %s; a wakeup probe that mutates state desynchronises the events kernel from the ticked one",
				DisplayName(node.Fn), f.Sink, ChainString(chain))
		case "wall-clock", "global-rand", "fs-read":
			mp.ReportAt(f.Origin, chain,
				"%s must not consult host state but reaches %s (%s): %s; a wakeup computed from the host breaks kernel equivalence",
				DisplayName(node.Fn), f.Sink, f.Kind, ChainString(chain)+" -> "+f.Sink)
		}
	}
}

// handlesNever reports whether the probe can report idleness: it
// references the Never constant (or the ^uint64(0) spelling), or
// delegates to kernel.Earliest or another unit's NextWakeup.
func handlesNever(pkg *Package, fd *ast.FuncDecl) bool {
	handled := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if handled {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name == "Never" {
				handled = true
			}
		case *ast.Ident:
			if n.Name == "Never" {
				handled = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.XOR {
				handled = true // ^uint64(0) and friends
			}
		case *ast.CallExpr:
			switch calleeIdentName(n) {
			case "Earliest", "NextWakeup":
				handled = true
			}
		}
		return !handled
	})
	return handled
}

// checkAdvanceToCalls inspects every X.AdvanceTo(arg) call in node's
// body: arg must not contain, or be defined from, an unclamped
// NextWakeup result.
func checkAdvanceToCalls(mp *ModulePass, node *CallNode) {
	pkg := node.Pkg
	var rd *ReachingDefs
	reaching := func(use *ast.Ident) []*Def {
		if rd == nil {
			rd = NewCFG(node.Decl.Body).ReachingDefs(pkg.Info, node.Decl)
		}
		return rd.DefsReaching(use)
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "AdvanceTo" {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Type().(*types.Signature).Recv() == nil {
			return true
		}
		arg := call.Args[0]
		// Direct: the argument expression itself computes the wakeup.
		if nw := unclampedNextWakeup(pkg, arg); nw != nil {
			mp.ReportAt(pkg.Fset.Position(call.Pos()), nil,
				"AdvanceTo receives a NextWakeup result without the kernel.Earliest clamp: a raw wakeup may be kernel.Never and jumping there deadlocks the clock; wrap it in Earliest")
			return true
		}
		// Indirect: a definition reaching an identifier in the argument
		// computes it.
		var flagged bool
		ast.Inspect(arg, func(a ast.Node) bool {
			if flagged {
				return false
			}
			id, ok := a.(*ast.Ident)
			if !ok {
				return true
			}
			for _, def := range reaching(id) {
				if def.RHS == nil {
					continue
				}
				if nw := unclampedNextWakeup(pkg, def.RHS); nw != nil {
					flagged = true
					mp.ReportAt(pkg.Fset.Position(call.Pos()), nil,
						"AdvanceTo receives a cycle derived from an unclamped NextWakeup (defined at line %d): a raw wakeup may be kernel.Never and jumping there deadlocks the clock; wrap the probe in kernel.Earliest",
						pkg.Fset.Position(def.Site.Pos()).Line)
					return false
				}
			}
			return true
		})
		return true
	})
}

// unclampedNextWakeup returns a NextWakeup call inside root that is not
// enclosed by an Earliest(...) clamp, or nil.
func unclampedNextWakeup(pkg *Package, root ast.Expr) *ast.CallExpr {
	var clamps []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && calleeIdentName(call) == "Earliest" {
			clamps = append(clamps, call)
		}
		return true
	})
	inClamp := func(n ast.Node) bool {
		for _, c := range clamps {
			if c.Pos() <= n.Pos() && n.End() <= c.End() {
				return true
			}
		}
		return false
	}
	var found *ast.CallExpr
	ast.Inspect(root, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && calleeIdentName(call) == "NextWakeup" && !inClamp(call) {
			found = call
		}
		return true
	})
	return found
}

// calleeIdentName returns the syntactic name of the called function:
// the selector's field or the bare identifier.
func calleeIdentName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// baseIdentOf unwraps selector/index/star chains to the base identifier
// (nil when the base is not an identifier).
func baseIdentOf(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprString renders a small lvalue chain for diagnostics (best-effort,
// identifiers and selectors only).
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return "?"
}

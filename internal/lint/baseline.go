package lint

// Accepted-debt baselining: a committed lint.baseline.json records the
// findings the team has decided to live with, so codecheck can gate on
// "no NEW findings" instead of "zero findings" — the only way to turn a
// new analyzer on as a blocking check over a codebase that already has
// history with it.
//
// Entries are keyed by (analyzer, file, message) with a count, not by
// line: a baseline that pins line numbers rots on every unrelated edit
// above the finding, and re-accepting the same debt after each refactor
// teaches people to regenerate the file blindly. Message text is stable
// (it names the functions and the hazard, not positions), so the
// line-free key tolerates drift while still catching the thing that
// matters — a second instance of an accepted finding, or a reworded
// (i.e. changed) one. Counts make N accepted instances of an identical
// message in one file distinguishable from N+1.
//
// Suppressed findings never enter the baseline: //lint:ignore already
// carries an in-source justification, and double-booking them would let
// a deleted directive go unnoticed.

import (
	"encoding/json"
	"fmt"
	"sort"
)

// baselineVersion is bumped only if the key scheme changes incompatibly.
const baselineVersion = 1

// BaselineEntry is one accepted finding class in the baseline file.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// Baseline is the committed accepted-debt file.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

type baselineKey struct {
	analyzer, file, message string
}

// NewBaseline aggregates the non-suppressed diagnostics into a baseline,
// deterministically sorted. base relativises paths the same way -json
// output does, so the file is stable across checkouts. Warning-severity
// findings never enter the baseline: they do not block, so recording
// them as accepted debt would only manufacture stale entries.
func NewBaseline(diags []Diagnostic, base string) *Baseline {
	counts := map[baselineKey]int{}
	for _, d := range diags {
		if d.Suppressed || d.Warning {
			continue
		}
		counts[baselineKey{d.Analyzer, relTo(base, d.Pos.Filename), d.Message}]++
	}
	b := &Baseline{Version: baselineVersion}
	for k, n := range counts {
		b.Findings = append(b.Findings, BaselineEntry{
			Analyzer: k.analyzer, File: k.file, Message: k.message, Count: n,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		x, y := b.Findings[i], b.Findings[j]
		if x.Analyzer != y.Analyzer {
			return x.Analyzer < y.Analyzer
		}
		if x.File != y.File {
			return x.File < y.File
		}
		return x.Message < y.Message
	})
	return b
}

// Marshal renders the baseline as indented JSON with a trailing newline,
// ready to commit.
func (b *Baseline) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ParseBaseline decodes a baseline file, rejecting unknown versions.
func ParseBaseline(data []byte) (*Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline: %w", err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("baseline version %d not supported (want %d); regenerate with -update-baseline", b.Version, baselineVersion)
	}
	return &b, nil
}

// Apply marks diagnostics covered by the baseline (Baselined = true),
// consuming at most Count instances per entry: the N+1th identical
// finding stays new. Suppressed findings are never consumed against the
// baseline. Returns the number of findings marked.
func (b *Baseline) Apply(diags []Diagnostic, base string) int {
	remaining := map[baselineKey]int{}
	for _, e := range b.Findings {
		remaining[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	marked := 0
	for i := range diags {
		d := &diags[i]
		if d.Suppressed || d.Warning {
			continue
		}
		k := baselineKey{d.Analyzer, relTo(base, d.Pos.Filename), d.Message}
		if remaining[k] > 0 {
			remaining[k]--
			d.Baselined = true
			marked++
		}
	}
	return marked
}

// Stale returns the baseline entries (counts reduced to the unmatched
// excess) that no current finding justifies: accepted debt that has since
// been paid off, or rotted keys after a refactor. A stale entry is a lie
// waiting to mask a future regression — the N+1th instance of a finding
// whose N accepted instances are gone would slip through unnoticed — so
// the committed baseline must stay prunable to empty staleness, which
// TestCommittedBaselineNotStale enforces over the real module.
func (b *Baseline) Stale(diags []Diagnostic, base string) []BaselineEntry {
	current := map[baselineKey]int{}
	for _, d := range diags {
		if d.Suppressed || d.Warning {
			continue
		}
		current[baselineKey{d.Analyzer, relTo(base, d.Pos.Filename), d.Message}]++
	}
	accepted := map[baselineKey]int{}
	var order []baselineKey
	for _, e := range b.Findings {
		k := baselineKey{e.Analyzer, e.File, e.Message}
		if _, seen := accepted[k]; !seen {
			order = append(order, k)
		}
		accepted[k] += e.Count
	}
	var stale []BaselineEntry
	for _, k := range order {
		if excess := accepted[k] - current[k]; excess > 0 {
			stale = append(stale, BaselineEntry{
				Analyzer: k.analyzer, File: k.file, Message: k.message, Count: excess,
			})
		}
	}
	return stale
}

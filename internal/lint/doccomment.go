package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// DocComment enforces the repository's godoc contract: every package under
// internal/ or cmd/ must carry a package doc comment, and every exported
// top-level identifier in those packages must carry its own doc comment (or
// be covered by its declaration group's). The experiment commands and the
// harness are the reproduction's user interface — an undocumented export is
// an export nobody can use without reading the source.
var DocComment = &Analyzer{
	Name: "doccomment",
	Doc:  "requires a package doc comment and doc comments on exported top-level identifiers in internal/ and cmd/ packages",
	Run:  runDocComment,
}

// docCommentScope reports whether the package at the given import path is
// held to the doc contract: everything under internal/ and cmd/, plus
// testdata packages (which the test harness loads with an empty path).
func docCommentScope(path string) bool {
	return path == "" ||
		strings.Contains(path, "/internal/") ||
		strings.Contains(path, "/cmd/")
}

func runDocComment(pass *Pass) error {
	if !docCommentScope(pass.Path) {
		return nil
	}
	var first *ast.File
	hasPkgDoc := false
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		if first == nil {
			first = f
		}
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	if first == nil {
		return nil // test-only package
	}
	if !hasPkgDoc {
		name := pass.Pkg.Name()
		pass.Reportf(first.Name.Pos(),
			"package %s has no doc comment; add a 'Package %s ...' comment above one package clause", name, name)
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			checkDeclDoc(pass, decl)
		}
	}
	return nil
}

// checkDeclDoc flags exported top-level identifiers declared without a doc
// comment. A group doc on a const/var/type block covers every spec in it;
// otherwise a value spec may carry its own doc or trailing line comment.
func checkDeclDoc(pass *Pass, decl ast.Decl) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Doc != nil || !ast.IsExported(d.Name.Name) {
			return
		}
		if recv := recvTypeName(d); d.Recv != nil {
			if !ast.IsExported(recv) {
				return // method on an unexported type: not part of the API
			}
			pass.Reportf(d.Name.Pos(), "exported method %s.%s has no doc comment", recv, d.Name.Name)
			return
		}
		pass.Reportf(d.Name.Pos(), "exported function %s has no doc comment", d.Name.Name)
	case *ast.GenDecl:
		if d.Doc != nil {
			return // the group doc covers every spec
		}
		kind := map[token.Token]string{token.CONST: "const", token.VAR: "var", token.TYPE: "type"}[d.Tok]
		if kind == "" {
			return // imports
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Doc == nil && ast.IsExported(s.Name.Name) {
					pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
				}
			case *ast.ValueSpec:
				if s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if ast.IsExported(name.Name) {
						pass.Reportf(name.Pos(), "exported %s %s has no doc comment", kind, name.Name)
					}
				}
			}
		}
	}
}

// recvTypeName returns the bare name of a method's receiver type ("" for
// functions), unwrapping pointers, parens and type parameters.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
			continue
		case *ast.ParenExpr:
			t = e.X
			continue
		case *ast.IndexExpr:
			t = e.X
			continue
		case *ast.IndexListExpr:
			t = e.X
			continue
		}
		break
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

package lint

import (
	"strings"
	"testing"
)

// Analyzer cases: one flagged and one clean testdata package per
// analyzer, plus the scope/suppression variants.

func TestDetMapFlagged(t *testing.T)    { runAnalyzerTest(t, DetMap, "detmap/flagged") }
func TestDetMapClean(t *testing.T)      { runAnalyzerTest(t, DetMap, "detmap/clean") }
func TestDetMapOutOfScope(t *testing.T) { runAnalyzerTest(t, DetMap, "detmap/outofscope") }

func TestWallTimeFlagged(t *testing.T) { runAnalyzerTest(t, WallTime, "walltime/flagged") }
func TestWallTimeClean(t *testing.T)   { runAnalyzerTest(t, WallTime, "walltime/clean") }

// TestWallTimeHarness pins the runner exemption: a package named runner may
// read the wall clock (progress/ETA gauges) but still may not touch the
// global math/rand generator.
func TestWallTimeHarness(t *testing.T) { runAnalyzerTest(t, WallTime, "walltime/harness") }

// TestWallTimeFlightRecorder pins the flight-recorder exemption: recorded
// events are cycle-stamped sim-time, so package flight may read the wall
// clock to pace its live /events stream, while the global-rand ban holds.
func TestWallTimeFlightRecorder(t *testing.T) { runAnalyzerTest(t, WallTime, "walltime/flightrec") }

// TestWallTimeTelemetry pins the telemetry exemption: the sampler layer
// may read the wall clock to timestamp operator-facing observations, while
// the global-rand ban holds.
func TestWallTimeTelemetry(t *testing.T) { runAnalyzerTest(t, WallTime, "walltime/telemetry") }

func TestBitMaskFlagged(t *testing.T) { runAnalyzerTest(t, BitMask, "bitmask/flagged") }
func TestBitMaskClean(t *testing.T)   { runAnalyzerTest(t, BitMask, "bitmask/clean") }

func TestAtomicHandleFlagged(t *testing.T) { runAnalyzerTest(t, AtomicHandle, "atomichandle/flagged") }
func TestAtomicHandleClean(t *testing.T)   { runAnalyzerTest(t, AtomicHandle, "atomichandle/clean") }

func TestErrDropFlagged(t *testing.T) { runAnalyzerTest(t, ErrDrop, "errdrop/flagged") }
func TestErrDropClean(t *testing.T)   { runAnalyzerTest(t, ErrDrop, "errdrop/clean") }
func TestErrDropFlight(t *testing.T)  { runAnalyzerTest(t, ErrDrop, "errdrop/flight") }

func TestDocCommentFlagged(t *testing.T) { runAnalyzerTest(t, DocComment, "doccomment/flagged") }
func TestDocCommentClean(t *testing.T)   { runAnalyzerTest(t, DocComment, "doccomment/clean") }

// TestDocCommentScope pins the analyzer's reach: testdata (empty path),
// internal/ and cmd/ packages are in scope; the module root and vendored
// paths are not.
func TestDocCommentScope(t *testing.T) {
	for path, want := range map[string]bool{
		"":                          true,
		"l15cache/internal/runner":  true,
		"l15cache/cmd/makespan":     true,
		"l15cache":                  false,
		"example.com/other/package": false,
	} {
		if got := docCommentScope(path); got != want {
			t.Errorf("docCommentScope(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestExhaustiveFlagged(t *testing.T) { runAnalyzerTest(t, Exhaustive, "exhaustive/flagged") }
func TestExhaustiveClean(t *testing.T)   { runAnalyzerTest(t, Exhaustive, "exhaustive/clean") }

func TestPurityCheckFlagged(t *testing.T) { runAnalyzerTest(t, PurityCheck, "puritycheck/flagged") }
func TestPurityCheckClean(t *testing.T)   { runAnalyzerTest(t, PurityCheck, "puritycheck/clean") }

// TestPurityCheckFlightRecorder pins the interprocedural half of the
// flight carve-out: wall-clock facts are not seeded in package flight, but
// global-rand and fs-read hazards on the same paths still report.
func TestPurityCheckFlightRecorder(t *testing.T) {
	runAnalyzerTest(t, PurityCheck, "puritycheck/flightrec")
}

func TestLockGuardFlagged(t *testing.T) { runAnalyzerTest(t, LockGuard, "lockguard/flagged") }
func TestLockGuardClean(t *testing.T)   { runAnalyzerTest(t, LockGuard, "lockguard/clean") }

func TestHotAllocFlagged(t *testing.T) { runAnalyzerTest(t, HotAlloc, "hotalloc/flagged") }
func TestHotAllocClean(t *testing.T)   { runAnalyzerTest(t, HotAlloc, "hotalloc/clean") }

func TestWakeupSafeFlagged(t *testing.T) { runAnalyzerTest(t, WakeupSafe, "wakeupsafe/flagged") }
func TestWakeupSafeClean(t *testing.T)   { runAnalyzerTest(t, WakeupSafe, "wakeupsafe/clean") }

func TestFingerprintCompleteFlagged(t *testing.T) {
	runAnalyzerTest(t, FingerprintComplete, "fingerprintcomplete/flagged")
}
func TestFingerprintCompleteClean(t *testing.T) {
	runAnalyzerTest(t, FingerprintComplete, "fingerprintcomplete/clean")
}

func TestSharedCaptureFlagged(t *testing.T) {
	runAnalyzerTest(t, SharedCapture, "sharedcapture/flagged")
}
func TestSharedCaptureClean(t *testing.T) {
	runAnalyzerTest(t, SharedCapture, "sharedcapture/clean")
}

// TestIgnoreDirectives exercises suppression end to end: justified ignores
// silence findings, malformed ones are themselves reported.
func TestIgnoreDirectives(t *testing.T) { runAnalyzerTest(t, WallTime, "ignore") }

// TestRunModuleKeepsSuppressed pins the -json contract: RunModule marks
// suppressed findings instead of dropping them, carrying the directive's
// justification, while Run still filters them out.
func TestRunModuleKeepsSuppressed(t *testing.T) {
	pkg, err := LoadDir("testdata/src/ignore")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	all, err := RunModule([]*Package{pkg}, []*Analyzer{WallTime})
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	var suppressed []Diagnostic
	for _, d := range all {
		if d.Suppressed {
			suppressed = append(suppressed, d)
		}
	}
	if len(suppressed) == 0 {
		t.Fatal("RunModule dropped the suppressed findings; expected them marked")
	}
	for _, d := range suppressed {
		if d.Justification == "" {
			t.Errorf("suppressed finding %s carries no justification", d)
		}
	}
	kept, err := Run(pkg, []*Analyzer{WallTime})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(kept) >= len(all) {
		t.Errorf("Run kept %d of %d diagnostics; expected suppressed ones filtered", len(kept), len(all))
	}
	for _, d := range kept {
		if d.Suppressed {
			t.Errorf("Run returned a suppressed diagnostic: %s", d)
		}
	}
}

// TestIgnores pins the -ignores audit listing over the suppression testdata.
func TestIgnores(t *testing.T) {
	pkg, err := LoadDir("testdata/src/ignore")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	entries := Ignores([]*Package{pkg})
	if len(entries) == 0 {
		t.Fatal("no ignore directives found in testdata/src/ignore")
	}
	justified := 0
	for i, e := range entries {
		if e.File == "" || e.Line == 0 || e.Analyzers == "" {
			t.Errorf("entry %+v missing file, line or analyzers", e)
		}
		if e.Justification != "" {
			justified++
		}
		if i > 0 && (entries[i-1].File > e.File ||
			(entries[i-1].File == e.File && entries[i-1].Line > e.Line)) {
			t.Errorf("entries out of order at %d: %+v after %+v", i, e, entries[i-1])
		}
	}
	if justified == 0 {
		t.Error("no justified directives listed")
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want %d", len(all), err, len(All()))
	}
	two, err := ByName("detmap, errdrop")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if len(two) != 2 || two[0] != DetMap || two[1] != ErrDrop {
		t.Fatalf("ByName(detmap, errdrop) = %v", two)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) did not fail")
	}
}

func TestAnalyzerNamesUniqueAndDocumented(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %+v missing name or doc, or not exactly one of Run/RunModule", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestLoadModulePackages loads real module packages through the go
// list/export-data path and sanity-checks type information is present.
func TestLoadModulePackages(t *testing.T) {
	pkgs, err := Load("", "../bitmap", "../l15")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("Load returned %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || len(p.Files) == 0 || len(p.Info.Uses) == 0 {
			t.Errorf("package %s loaded without type info", p.ImportPath)
		}
	}
	if !strings.HasSuffix(pkgs[0].ImportPath, "internal/bitmap") {
		t.Errorf("unexpected import path %q", pkgs[0].ImportPath)
	}
}

// TestSuiteCleanOnOwnPackage runs the full suite over internal/lint itself
// — the analyzers must hold their own code to the same standard.
func TestSuiteCleanOnOwnPackage(t *testing.T) {
	pkgs, err := Load("", ".", "./internal/fixture")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		diags, err := Run(p, All())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for _, d := range diags {
			t.Errorf("finding in lint suite itself: %s", d)
		}
	}
}

// TestPurityCheckMemoCarveOut loads the real experiments/runner/memo
// packages and asserts the interprocedural purity check accepts the
// content-addressed cache chain (experiments sweep -> runner.Map ->
// memo.Get -> os.ReadFile): package memo's fs-read carve-out must keep the
// disk tier from registering as a determinism hazard, while every other
// rule still applies to it.
func TestPurityCheckMemoCarveOut(t *testing.T) {
	pkgs, err := Load("", "../experiments", "../runner", "../memo")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := RunModule(pkgs, []*Analyzer{PurityCheck})
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		t.Errorf("purity finding across the memo chain: %s", d)
	}
}

// TestPurityCheckTelemetryCarveOut loads the real telemetry chain —
// experiments sweeps fan out through runner.Map, whose span layer
// publishes into telemetry.Runtime, while the flight server samples the
// merged registries — and asserts the interprocedural purity check stays
// clean: package telemetry's wall-clock carve-out must keep the sampler's
// clock reads from registering as determinism hazards, while every other
// rule still applies across the chain.
func TestPurityCheckTelemetryCarveOut(t *testing.T) {
	pkgs, err := Load("", "../experiments", "../runner", "../memo", "../flight", "../telemetry")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := RunModule(pkgs, []*Analyzer{PurityCheck})
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		t.Errorf("purity finding across the telemetry chain: %s", d)
	}
}

package lint

// SARIF 2.1.0 rendering of the suite's diagnostics, the interchange
// format GitHub code scanning ingests. The mapping keeps every piece of
// evidence the -json schema carries: interprocedural chains become
// relatedLocations (one per hop, labelled with the function), in-source
// //lint:ignore directives become suppressions with their justification,
// and baseline membership is expressed through the spec's own
// baselineState property ("unchanged" for baselined findings, "new"
// otherwise) so a viewer can filter accepted debt without a side channel.
//
// Only the slice of the spec we emit is modelled; the structs marshal to
// valid SARIF per the 2.1.0 schema's required properties, which
// TestSARIFSchema pins structurally (no JSON-Schema validator ships with
// the stdlib, so the test asserts the schema's requirements directly).

import (
	"encoding/json"
	"path/filepath"
)

// sarifSchemaURI is the canonical 2.1.0 schema location, embedded in the
// log's $schema property.
const sarifSchemaURI = "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID           string             `json:"ruleId"`
	RuleIndex        int                `json:"ruleIndex"`
	Level            string             `json:"level"`
	Message          sarifMessage       `json:"message"`
	Locations        []sarifLocation    `json:"locations"`
	RelatedLocations []sarifLocation    `json:"relatedLocations,omitempty"`
	Suppressions     []sarifSuppression `json:"suppressions,omitempty"`
	BaselineState    string             `json:"baselineState,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifMessage `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// ToSARIF renders diagnostics as an indented SARIF 2.1.0 log. analyzers
// is the list that actually ran (each becomes a rule; results reference
// rules by index), base relativises file URIs the same way -json does.
func ToSARIF(diags []Diagnostic, analyzers []*Analyzer, base string) ([]byte, error) {
	driver := sarifDriver{
		Name:           "codecheck",
		InformationURI: "https://github.com/l15cache/l15cache",
	}
	ruleIndex := map[string]int{}
	for i, a := range analyzers {
		ruleIndex[a.Name] = i
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		res := sarifResult{
			RuleID:  d.Analyzer,
			Level:   severityOf(d),
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       filepath.ToSlash(relTo(base, d.Pos.Filename)),
						URIBaseID: "%SRCROOT%",
					},
					Region: &sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
			BaselineState: "new",
		}
		if idx, ok := ruleIndex[d.Analyzer]; ok {
			res.RuleIndex = idx
		}
		for _, e := range d.Chain {
			if !e.Site.IsValid() {
				continue
			}
			res.RelatedLocations = append(res.RelatedLocations, sarifLocation{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       filepath.ToSlash(relTo(base, e.Site.Filename)),
						URIBaseID: "%SRCROOT%",
					},
					Region: &sarifRegion{StartLine: e.Site.Line, StartColumn: e.Site.Column},
				},
				Message: &sarifMessage{Text: e.Func},
			})
		}
		if d.Suppressed {
			res.Suppressions = []sarifSuppression{{
				Kind:          "inSource",
				Justification: d.Justification,
			}}
		}
		if d.Baselined {
			res.BaselineState = "unchanged"
		}
		results = append(results, res)
	}

	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: driver},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

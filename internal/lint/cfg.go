package lint

// The dataflow layer's foundation: a per-function control-flow graph built
// directly over go/ast, the stdlib-only stand-in for
// golang.org/x/tools/go/cfg (unavailable offline, like the rest of the
// analysis API this package mirrors). Each function body becomes basic
// blocks of statements in evaluation order, with edges for branches,
// loops (including labeled break/continue and goto), switch/type-switch
// dispatch with fallthrough, select, and the short-circuit operators —
// `a && b` evaluates its operands in separate blocks, so a definition
// inside `b` is correctly seen as conditional.
//
// Two deliberate simplifications, both conservative for the analyses
// built on top (reaching definitions, the hotalloc/wakeupsafe passes):
//
//   - switch case dispatch is modelled as the tag block branching to
//     every case at once rather than testing clauses sequentially; this
//     only adds edges, never hides one;
//   - deferred calls are recorded in Defers and replayed into the Exit
//     block (they run at function exit); a defer registered inside a loop
//     appears once in Defers although it may run many times — traversals
//     that care count registrations, not executions.
//
// Panics and runtime aborts are not modelled: every block that can
// complete falls through to its syntactic successor.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: nodes executed in order (statements, plus
// bare condition expressions for decomposed short-circuit operands),
// then a branch to one of Succs.
type Block struct {
	Index int
	Kind  string // "entry", "exit", "body", "if.then", "for.head", ... for debugging
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	Live  bool // reachable from Entry
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers lists every defer statement in source order. Their call
	// expressions are also appended to Exit's nodes, where they execute.
	Defers []*ast.DeferStmt
}

// builder carries the construction state.
type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	labels map[string]*labelFrame
	gotos  []pendingGoto
	// frames is the stack of enclosing breakable/continuable constructs.
	frames []*ctrlFrame
}

// ctrlFrame is one enclosing loop/switch/select: where break and continue
// jump, and the label naming it (if any).
type ctrlFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select (continue skips them)
	// nextCase, set while building a switch clause, is where fallthrough
	// jumps.
	nextCase *Block
}

type labelFrame struct {
	target *Block // goto target
}

type pendingGoto struct {
	from  *Block
	label string
}

// NewCFG builds the graph for body. A nil body (declaration without a
// body) yields a two-block graph with no statements.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*labelFrame{},
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	for _, g := range b.gotos {
		if lf, ok := b.labels[g.label]; ok && lf.target != nil {
			b.edge(g.from, lf.target)
		}
	}
	// Deferred calls run at exit, in reverse registration order; reverse
	// order does not matter for the flow-insensitive consumers, so they
	// are appended in source order.
	for _, d := range b.cfg.Defers {
		b.cfg.Exit.Nodes = append(b.cfg.Exit.Nodes, d.Call)
	}
	b.markLive()
	return b.cfg
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startDead begins an unreachable block (after return/break/goto), so
// syntactically-dead statements still land in the graph, marked !Live.
func (b *cfgBuilder) startDead() {
	b.cur = b.newBlock("dead")
}

func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// frameFor finds the innermost frame, or the one carrying label.
func (b *cfgBuilder) frameFor(label string, needContinue bool) *ctrlFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if needContinue && f.continueTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

// stmt wires one statement. label is the pending label when the statement
// is the body of a LabeledStmt (so `L: for ...` registers L on the loop's
// frame).
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		target := b.newBlock("label." + s.Label.Name)
		b.edge(b.cur, target)
		b.cur = target
		b.labels[s.Label.Name] = &labelFrame{target: target}
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		els := done
		if s.Else != nil {
			els = b.newBlock("if.else")
		}
		b.cond(s.Cond, then, els)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, done)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else, "")
			b.edge(b.cur, done)
		}
		b.cur = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			b.cur2(post).add(s.Post)
			b.edge(post, head)
		}
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.cond(s.Cond, body, done)
		} else {
			b.edge(head, body)
		}
		b.frames = append(b.frames, &ctrlFrame{label: label, breakTo: done, continueTo: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, post)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = done

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, s) // the iteration (and Key/Value defs) lives here
		b.edge(head, body)
		b.edge(head, done)
		b.frames = append(b.frames, &ctrlFrame{label: label, breakTo: done, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, label, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, label, false)

	case *ast.SelectStmt:
		b.caseClauses(s.Body.List, label, true)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.startDead()

	case *ast.BranchStmt:
		lbl := ""
		if s.Label != nil {
			lbl = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if f := b.frameFor(lbl, false); f != nil {
				b.edge(b.cur, f.breakTo)
			}
			b.startDead()
		case token.CONTINUE:
			if f := b.frameFor(lbl, true); f != nil {
				b.edge(b.cur, f.continueTo)
			}
			b.startDead()
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: lbl})
			b.startDead()
		case token.FALLTHROUGH:
			if f := b.frameFor("", false); f != nil && f.nextCase != nil {
				b.edge(b.cur, f.nextCase)
			}
			b.startDead()
		}

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)

	case *ast.GoStmt:
		// The spawned goroutine runs concurrently with everything after the
		// statement, so control flow in this function stays straight-line —
		// but the spawn must remain identifiable: reaching definitions
		// treats writes to captured variables inside the literal as weak
		// (gen-without-kill) definitions generated here, because they can
		// land at any later point of the enclosing function.
		b.add(s)

	default:
		// Assignments, declarations, expression statements, send, inc/dec,
		// empty: straight-line nodes.
		b.add(s)
	}
}

// cur2 temporarily redirects add() to blk; used for for-post statements.
type blockAdder struct{ blk *Block }

func (b *cfgBuilder) cur2(blk *Block) blockAdder { return blockAdder{blk} }
func (a blockAdder) add(n ast.Node)              { a.blk.Nodes = append(a.blk.Nodes, n) }

// caseClauses wires a switch/type-switch/select body: the current block
// branches to every clause (sequential tag tests are over-approximated as
// one fan-out), each clause falls out to done, fallthrough jumps to the
// next clause's body.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, label string, isSelect bool) {
	done := b.newBlock("switch.done")
	dispatch := b.cur
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		kind := "case"
		if isSelect {
			kind = "select.case"
		}
		blocks[i] = b.newBlock(kind)
		b.edge(dispatch, blocks[i])
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
		}
	}
	// With no default, the tag may match nothing (or the select parks
	// until a case is ready — same join).
	if !hasDefault || len(clauses) == 0 {
		b.edge(dispatch, done)
	}
	frame := &ctrlFrame{label: label, breakTo: done}
	b.frames = append(b.frames, frame)
	for i, c := range clauses {
		if i+1 < len(blocks) {
			frame.nextCase = blocks[i+1]
		} else {
			frame.nextCase = nil
		}
		b.cur = blocks[i]
		switch cc := c.(type) {
		case *ast.CaseClause:
			b.stmtList(cc.Body)
		case *ast.CommClause:
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmtList(cc.Body)
		}
		b.edge(b.cur, done)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// cond wires the evaluation of a boolean expression with true/false
// targets, splitting short-circuit operators so each operand evaluates in
// its own block.
func (b *cfgBuilder) cond(expr ast.Expr, t, f *Block) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			mid := b.newBlock("cond.and")
			b.cond(e.X, mid, f)
			b.cur = mid
			b.cond(e.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock("cond.or")
			b.cond(e.X, t, mid)
			b.cur = mid
			b.cond(e.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			b.cond(e.X, f, t)
			return
		}
	}
	b.add(expr)
	b.edge(b.cur, t)
	b.edge(b.cur, f)
}

// markLive computes reachability from Entry.
func (b *cfgBuilder) markLive() {
	var visit func(*Block)
	visit = func(blk *Block) {
		if blk.Live {
			return
		}
		blk.Live = true
		for _, s := range blk.Succs {
			visit(s)
		}
	}
	visit(b.cfg.Entry)
}

// ContainingBlock returns the block holding the node whose source span
// covers pos, preferring live blocks (a position can only be in one
// statement, but dead blocks replay defers into Exit).
func (c *CFG) ContainingBlock(pos token.Pos) *Block {
	var dead *Block
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if n.Pos() <= pos && pos <= n.End() {
				if blk.Live {
					return blk
				}
				if dead == nil {
					dead = blk
				}
			}
		}
	}
	return dead
}

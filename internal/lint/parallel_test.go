package lint

// Tests for the parallel execution path: the diagnostics must be
// byte-identical to the serial RunModule at any worker count (the same
// determinism contract runner.Map gives the experiments), and the timing
// summary must account every analyzer plus the shared call graph.

import (
	"context"
	"testing"
)

func TestRunModuleParallelMatchesSerial(t *testing.T) {
	pkgs, err := Load("", "../bitmap", "../l15", "../memo")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	serial, err := RunModule(pkgs, All())
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	for _, workers := range []int{1, 4} {
		par, timings, err := RunModuleParallel(context.Background(), pkgs, All(), workers)
		if err != nil {
			t.Fatalf("RunModuleParallel(workers=%d): %v", workers, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d diagnostics, serial has %d", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i].String() != serial[i].String() || par[i].Warning != serial[i].Warning ||
				par[i].Suppressed != serial[i].Suppressed {
				t.Errorf("workers=%d: diagnostic %d differs from serial:\n  par:    %s\n  serial: %s",
					workers, i, par[i], serial[i])
			}
		}
		if len(timings) != len(All())+1 {
			t.Fatalf("workers=%d: %d timing entries, want %d analyzers + call graph",
				workers, len(timings), len(All()))
		}
		names := map[string]bool{}
		for _, tm := range timings {
			if tm.Duration < 0 {
				t.Errorf("negative duration for %s", tm.Analyzer)
			}
			names[tm.Analyzer] = true
		}
		if !names["(call graph)"] {
			t.Error("timing summary missing the call-graph pseudo-entry")
		}
		for _, a := range All() {
			if !names[a.Name] {
				t.Errorf("timing summary missing analyzer %s", a.Name)
			}
		}
	}
}

func TestRunModuleParallelEmpty(t *testing.T) {
	diags, timings, err := RunModuleParallel(context.Background(), nil, All(), 2)
	if err != nil {
		t.Fatalf("RunModuleParallel on zero packages: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("zero packages produced %d diagnostics", len(diags))
	}
	if len(timings) != len(All())+1 {
		t.Errorf("%d timing entries, want %d", len(timings), len(All())+1)
	}
}

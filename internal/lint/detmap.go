package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// simPackages are the package names whose behaviour must be bit-identical
// across runs: anything feeding the cycle-accurate simulation or the
// experiment harnesses. Go randomizes map iteration order per run, so a
// `range` over a map in these packages must not have order-dependent
// effects unless the result is sorted afterwards.
var simPackages = map[string]bool{
	"sched":       true,
	"schedsim":    true,
	"rtsim":       true,
	"soc":         true,
	"l15":         true,
	"experiments": true,
	"runner":      true, // the parallel harness must reduce in index order
}

// DetMap flags map iteration with order-dependent effects in the simulator
// packages: appending to a slice declared outside the loop, or writing
// output (fmt printing, io writes), without a deterministic sort later in
// the same function. This is the classic source of run-to-run
// nondeterminism in a cycle-accurate reproduction — scheduling decisions or
// CSV rows silently reordering between runs.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc:  "flags order-dependent map iteration in simulator packages (range over a map that appends or writes output with no subsequent sort)",
	Run:  runDetMap,
}

func runDetMap(pass *Pass) error {
	if !simPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fnBody, ok := funcBody(n)
			if !ok {
				return true
			}
			checkDetMapFunc(pass, fnBody)
			return true
		})
	}
	return nil
}

func funcBody(n ast.Node) (*ast.BlockStmt, bool) {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body, fn.Body != nil
	case *ast.FuncLit:
		return fn.Body, fn.Body != nil
	}
	return nil, false
}

func checkDetMapFunc(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // visited separately via funcBody
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		effect := orderSensitiveEffect(pass, rng)
		if effect == "" {
			return true
		}
		if sortedAfter(pass, body, rng.End()) {
			return true
		}
		pass.Reportf(rng.For,
			"map iteration %s without a subsequent sort; map order is randomized per run and breaks simulator determinism (collect keys and sort, or sort the result)",
			effect)
		return true
	})
}

// orderSensitiveEffect reports what makes the loop body order-dependent, or
// "" if it is order-neutral (e.g. it only fills another map or reduces with
// a commutative operation).
func orderSensitiveEffect(pass *Pass, rng *ast.RangeStmt) string {
	effect := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isAppendToOuter(pass, call, rng) {
			effect = "appends to a slice declared outside the loop"
			return false
		}
		if name := outputCallName(pass, call); name != "" {
			effect = "writes output via " + name
			return false
		}
		return true
	})
	return effect
}

// isAppendToOuter reports whether call is append(dst, ...) with dst
// declared outside the range statement.
func isAppendToOuter(pass *Pass, call *ast.CallExpr, rng *ast.RangeStmt) bool {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if obj, ok := pass.TypesInfo.Uses[fn]; !ok || obj != types.Universe.Lookup("append") {
		return false
	}
	root := call.Args[0]
	for {
		switch e := root.(type) {
		case *ast.IndexExpr:
			root = e.X
			continue
		case *ast.SelectorExpr:
			root = e.X
			continue
		}
		break
	}
	// append to a value that is fresh every iteration — a conversion like
	// append([]T(nil), xs...) or a composite literal — is order-neutral no
	// matter where the result lands.
	if conv, ok := root.(*ast.CallExpr); ok {
		if tv, ok := pass.TypesInfo.Types[conv.Fun]; ok && tv.IsType() {
			return false
		}
	}
	if _, ok := root.(*ast.CompositeLit); ok {
		return false
	}
	id, ok := root.(*ast.Ident)
	if !ok {
		return true // appending to a compound expression: assume outer
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	// Declared inside the loop body: order-neutral (fresh each iteration).
	return !(obj.Pos() >= rng.Pos() && obj.Pos() < rng.End())
}

// outputCallName recognizes printing/writing calls whose emission order is
// observable: the fmt printers and io/bufio-style Write methods.
func outputCallName(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" && fn.Type().(*types.Signature).Recv() == nil {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + fn.Name()
		}
		return ""
	}
	if sig := fn.Type().(*types.Signature); sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Emit":
			return "(" + types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg)) + ")." + fn.Name()
		}
	}
	return ""
}

// sortedAfter reports whether any statement after pos (within body) calls
// into sort or slices ordering functions — the "collect then sort" idiom
// that restores determinism.
func sortedAfter(pass *Pass, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() < pos {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				found = true
				return false
			}
		}
		return true
	})
	return found
}

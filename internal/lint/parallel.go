package lint

// Parallel execution of the per-package analyzer passes on the
// repository's own deterministic harness: each loaded package is one
// runner.Map shard, results are reduced in package index order, so the
// diagnostic stream is byte-identical to the serial RunModule at any
// worker count — the same contract every sweep in internal/experiments
// relies on. The interprocedural analyzers still run serially afterwards
// (they need the whole call graph), which Amdahl caps the speedup but
// keeps the parallel section embarrassingly independent.
//
// The same entry point measures per-analyzer wall time for the codecheck
// -timing summary. Reading the wall clock is banned in simulator packages
// (the walltime analyzer) because simulated results must not depend on
// it; here it feeds an operator-facing diagnostic only, the same
// exemption the runner's ETA gauges enjoy — hence the explicit ignores.

import (
	"context"
	"time"

	"l15cache/internal/runner"
)

// AnalyzerTiming is the cumulative wall time one analyzer spent across
// every package (per-package analyzers) or in its single module pass.
// Parallel per-package passes overlap, so the durations sum CPU-side
// work, not elapsed time. The pseudo-entry "(call graph)" accounts the
// shared interprocedural graph construction.
type AnalyzerTiming struct {
	Analyzer string
	Duration time.Duration
}

// pkgUnit is one shard's result: the diagnostics of every per-package
// analyzer on one package, plus per-analyzer durations indexed like the
// analyzers slice.
type pkgUnit struct {
	Diags   []Diagnostic
	Elapsed []time.Duration
}

// RunModuleParallel is RunModule with the per-package passes fanned out
// over a bounded worker pool (workers <= 0 means runtime.NumCPU, the
// runner default) and per-analyzer wall-time accounting. The returned
// diagnostics are identical to RunModule's at any worker count.
func RunModuleParallel(ctx context.Context, pkgs []*Package, analyzers []*Analyzer, workers int) ([]Diagnostic, []AnalyzerTiming, error) {
	totals := make([]time.Duration, len(analyzers)+1) // +1: "(call graph)"
	var diags []Diagnostic

	if len(pkgs) > 0 {
		units, err := runner.Map(ctx, runner.Config{
			Name:    "codecheck",
			Options: runner.Options{Workers: workers},
		}, len(pkgs), func(_ context.Context, s runner.Shard) (pkgUnit, error) {
			u := pkgUnit{Elapsed: make([]time.Duration, len(analyzers))}
			for i, a := range analyzers {
				if a.Run == nil {
					continue
				}
				//lint:ignore walltime analyzer wall time is operator diagnostics (-timing), never a simulated result
				start := time.Now()
				pkgDiags, err := runPackagePass(pkgs[s.Index], a)
				//lint:ignore walltime analyzer wall time is operator diagnostics (-timing), never a simulated result
				u.Elapsed[i] = time.Since(start)
				if err != nil {
					return u, err
				}
				u.Diags = append(u.Diags, pkgDiags...)
			}
			return u, nil
		})
		if err != nil {
			return nil, nil, err
		}
		for _, u := range units {
			diags = append(diags, u.Diags...)
			for i, d := range u.Elapsed {
				totals[i] += d
			}
		}
	}

	nameIndex := map[string]int{}
	for i, a := range analyzers {
		nameIndex[a.Name] = i
	}
	timeOne := func(name string, run func() error) error {
		//lint:ignore walltime analyzer wall time is operator diagnostics (-timing), never a simulated result
		start := time.Now()
		err := run()
		//lint:ignore walltime analyzer wall time is operator diagnostics (-timing), never a simulated result
		elapsed := time.Since(start)
		if i, ok := nameIndex[name]; ok {
			totals[i] += elapsed
		} else {
			totals[len(analyzers)] += elapsed
		}
		return err
	}
	moduleDiags, err := runModulePasses(pkgs, analyzers, timeOne)
	if err != nil {
		return nil, nil, err
	}
	diags = append(diags, moduleDiags...)

	timings := make([]AnalyzerTiming, 0, len(analyzers)+1)
	for i, a := range analyzers {
		timings = append(timings, AnalyzerTiming{Analyzer: a.Name, Duration: totals[i]})
	}
	timings = append(timings, AnalyzerTiming{Analyzer: "(call graph)", Duration: totals[len(analyzers)]})
	return finishDiagnostics(pkgs, diags), timings, nil
}

package lint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The loader's error paths: every way Load/LoadDir can fail must surface a
// diagnosable error rather than a nil package or a panic downstream.

// writeTempModule lays out a throwaway module and returns its directory.
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadGoListFailure drives the go-list error path: a package that does
// not type-check makes `go list -export` fail before the loader's own
// type-check ever runs, and the compiler's message must survive into the
// returned error.
func TestLoadGoListFailure(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"broken/broken.go": "package broken\n\nfunc f() int { return undeclaredIdentifier }\n",
	})
	pkgs, err := Load(dir, "./broken")
	if err == nil {
		t.Fatalf("Load succeeded on a broken package: %v", pkgs)
	}
	if !strings.Contains(err.Error(), "undeclaredIdentifier") {
		t.Errorf("error does not carry the compiler message: %v", err)
	}
}

// TestLoadBadPattern drives the other go-list failure: a pattern matching
// nothing inside the module.
func TestLoadBadPattern(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"ok/ok.go": "// Package ok is empty.\npackage ok\n",
	})
	if _, err := Load(dir, "./no/such/dir"); err == nil {
		t.Fatal("Load succeeded on a pattern matching no packages")
	}
}

// TestLoadDirNoGoFiles covers the empty-directory guard.
func TestLoadDirNoGoFiles(t *testing.T) {
	_, err := LoadDir(t.TempDir())
	if err == nil || !strings.Contains(err.Error(), "no Go files") {
		t.Errorf("LoadDir on an empty dir: %v, want a no-Go-files error", err)
	}
}

// TestLoadDirParseError covers syntactically invalid input.
func TestLoadDirParseError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte("package bad\n\nfunc {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("LoadDir succeeded on unparseable source")
	}
}

// TestLoadDirTypeCheckError covers the type-check path LoadDir owns: the
// file parses but does not type-check, and the error names the directory.
func TestLoadDirTypeCheckError(t *testing.T) {
	dir := t.TempDir()
	src := "package bad\n\nfunc f() int { return \"not an int\" }\n"
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDir(dir)
	if err == nil {
		t.Fatal("LoadDir succeeded on an ill-typed package")
	}
	if !strings.Contains(err.Error(), "type-checking") || !strings.Contains(err.Error(), dir) {
		t.Errorf("LoadDir error = %v, want a type-checking error naming %s", err, dir)
	}
}

// TestMissingExportSentinel pins the contract of checkExports: packages that
// `go list -export` emitted without export data surface as ErrMissingExport
// (matchable with errors.Is), the pseudo-package unsafe is exempt, and the
// message names every offender so the fix is one `go build` away.
func TestMissingExportSentinel(t *testing.T) {
	if err := checkExports([]listEntry{
		{ImportPath: "unsafe"},
		{ImportPath: "fmt", Export: "/cache/fmt.a"},
	}); err != nil {
		t.Errorf("checkExports with only unsafe lacking export data: %v, want nil", err)
	}

	err := checkExports([]listEntry{
		{ImportPath: "tmpmod/b"},
		{ImportPath: "unsafe"},
		{ImportPath: "tmpmod/a"},
		{ImportPath: "fmt", Export: "/cache/fmt.a"},
	})
	if !errors.Is(err, ErrMissingExport) {
		t.Fatalf("checkExports error = %v, want errors.Is(err, ErrMissingExport)", err)
	}
	for _, want := range []string{"tmpmod/a", "tmpmod/b", "go build"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("checkExports error %q does not mention %q", err, want)
		}
	}

	// The importer-side lookup carries the same sentinel, so a package that
	// slips past the up-front check still fails with a matchable error.
	_, lookupErr := exportLookup(map[string]string{})("example.com/gone")
	if !errors.Is(lookupErr, ErrMissingExport) {
		t.Errorf("exportLookup miss = %v, want errors.Is(err, ErrMissingExport)", lookupErr)
	}
}

// TestLoadDirUnresolvableImport covers the export-data lookup failing for an
// import the go command cannot resolve.
func TestLoadDirUnresolvableImport(t *testing.T) {
	dir := t.TempDir()
	src := "package bad\n\nimport \"no.such.host/nope\"\n\nvar _ = nope.Thing\n"
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("LoadDir succeeded despite an unresolvable import")
	}
}

package lint

// The stable machine-readable form of the suite's output, consumed by the
// CI pipeline (per-diagnostic GitHub annotations, artifact upload) and by
// anything else that wants findings without scraping text. The schema is a
// contract: fields are only ever added, never renamed or removed.

import "path/filepath"

// DiagnosticJSON is one finding in `codecheck -json` output. Severity is
// "error" (blocking) or "warning" (advisory) — added with the
// fingerprintcomplete analyzer, whose wasted-key-entropy direction warns.
type DiagnosticJSON struct {
	Analyzer      string           `json:"analyzer"`
	File          string           `json:"file"`
	Line          int              `json:"line"`
	Col           int              `json:"col"`
	Message       string           `json:"message"`
	Severity      string           `json:"severity"`
	Chain         []ChainEntryJSON `json:"chain,omitempty"`
	Suppressed    bool             `json:"suppressed"`
	Justification string           `json:"justification,omitempty"`
	Baselined     bool             `json:"baselined"`
}

// ChainEntryJSON is one hop of interprocedural evidence in -json output.
// File/Line/Col are omitted for hops without a resolved call site (e.g.
// class-hierarchy edges).
type ChainEntryJSON struct {
	Func string `json:"func"`
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
	Col  int    `json:"col,omitempty"`
}

// ToJSON converts diagnostics to the -json schema. base, when non-empty, is
// the directory file paths are made relative to (the working directory in
// codecheck), so output is stable across checkouts; paths outside base stay
// absolute.
func ToJSON(diags []Diagnostic, base string) []DiagnosticJSON {
	out := make([]DiagnosticJSON, 0, len(diags))
	for _, d := range diags {
		j := DiagnosticJSON{
			Analyzer:      d.Analyzer,
			File:          relTo(base, d.Pos.Filename),
			Line:          d.Pos.Line,
			Col:           d.Pos.Column,
			Message:       d.Message,
			Severity:      severityOf(d),
			Suppressed:    d.Suppressed,
			Justification: d.Justification,
			Baselined:     d.Baselined,
		}
		for _, e := range d.Chain {
			ce := ChainEntryJSON{Func: e.Func}
			if e.Site.IsValid() {
				ce.File = relTo(base, e.Site.Filename)
				ce.Line = e.Site.Line
				ce.Col = e.Site.Column
			}
			j.Chain = append(j.Chain, ce)
		}
		out = append(out, j)
	}
	return out
}

// severityOf maps the Warning flag to the stable severity vocabulary
// shared by -json and SARIF.
func severityOf(d Diagnostic) string {
	if d.Warning {
		return "warning"
	}
	return "error"
}

// RelPath rewrites path relative to base the same way -json output does —
// exported so codecheck renders its text and -ignores listings with the
// same stable paths.
func RelPath(base, path string) string { return relTo(base, path) }

// relTo rewrites path relative to base when that produces a path inside it.
func relTo(base, path string) string {
	if base == "" || path == "" {
		return path
	}
	rel, err := filepath.Rel(base, path)
	if err != nil || filepath.IsAbs(rel) || rel == ".." ||
		len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator) {
		return path
	}
	return rel
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags silently discarded error returns where they bite this
// repository: the cmd/ tools (whose exit status is the CI contract — a
// swallowed write error means a truncated report that still "succeeds")
// and the file/flush paths everywhere (Close/Flush/Sync are exactly the
// calls whose errors carry the "did the data reach disk" answer).
//
// `_ = f.Close()` remains legal as the explicit opt-out, and `defer
// f.Close()` on read paths is left alone (flagging the idiom would bury
// the real findings).
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded error returns in cmd/* tools, in the flight recorder's export/codec paths (Write, io.Copy), and in Close/Flush/Sync calls everywhere; write through _ = only as a deliberate, visible choice",
	Run:  runErrDrop,
}

// flushNames are methods whose error result reports data loss.
var flushNames = map[string]bool{"Close": true, "Flush": true, "Sync": true}

// cmdOnlyNames are additionally checked inside cmd/* main packages, where
// a lost write truncates the tool's output.
var cmdOnlyNames = map[string]bool{"Write": true, "WriteString": true, "WriteFile": true, "WriteFiles": true}

// exportNames are additionally checked inside the flight recorder's
// export/codec paths: those functions stream binary ring state to files
// and HTTP responses, and a dropped Write or io.Copy error there means a
// truncated artifact that still reports success. io.Copy's (n, err)
// shape evades the single-error heuristic, so it is named explicitly.
var exportNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteTo": true, "Copy": true, "CopyN": true,
}

// neverFails lists receiver types documented to always return a nil error;
// flagging them would only teach people to ignore the analyzer.
var neverFailsRecv = map[string]bool{
	"*strings.Builder": true,
	"*bytes.Buffer":    true,
}

func runErrDrop(pass *Pass) error {
	strict := pass.Pkg.Name() == "main" &&
		(pass.Path == "" || strings.Contains(pass.Path, "/cmd/"))
	exportStrict := pass.Pkg.Name() == "flight" ||
		strings.HasSuffix(pass.Path, "internal/flight")
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call) {
				return true
			}
			name, recv := calleeName(pass, call)
			if neverFailsRecv[recv] {
				return true
			}
			interesting := flushNames[name] ||
				(strict && (cmdOnlyNames[name] || singleErrorResult(pass, call))) ||
				(exportStrict && (exportNames[name] || singleErrorResult(pass, call)))
			if !interesting {
				return true
			}
			label := name
			if recv != "" {
				label = "(" + recv + ")." + name
			}
			pass.Reportf(stmt.Pos(),
				"error from %s is silently discarded; handle it, or assign to _ to make the drop explicit",
				label)
			return true
		})
	}
	return nil
}

// returnsError reports whether the call's results include an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// singleErrorResult reports whether the call returns exactly one value, of
// type error — the strongest signal the caller was meant to look at it.
func singleErrorResult(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if _, isTuple := tv.Type.(*types.Tuple); isTuple {
		return false
	}
	return isErrorType(tv.Type)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// calleeName returns the called function's name and, for methods, the
// receiver type rendered with its package (e.g. "*strings.Builder").
func calleeName(pass *Pass, call *ast.CallExpr) (name, recv string) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		// Indirect call (function value): best-effort label.
		if id, ok := call.Fun.(*ast.Ident); ok {
			return id.Name, ""
		}
		return "call", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return fn.Name(), types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return p.Name() })
	}
	return fn.Name(), ""
}

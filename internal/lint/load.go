package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// ErrMissingExport is the sentinel wrapped into any loader error caused by
// `go list -export` reporting a package without compiler export data. The
// usual cause is a cold or read-only build cache; `go build ./...` first
// repopulates it. Callers match it with errors.Is and can distinguish this
// recoverable condition from genuine type-check failures.
var ErrMissingExport = errors.New("package has no compiler export data")

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Incomplete bool
}

// goList invokes the go command and decodes its JSON stream. dir may be ""
// for the current directory.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportLookup builds the importer lookup function over the export-data
// files `go list -export` reported.
func exportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: %w: %q", ErrMissingExport, path)
		}
		return os.Open(file)
	}
}

// checkExports verifies that every package `go list -export` emitted carries
// export data, so a cold build cache fails fast with ErrMissingExport instead
// of surfacing later as an opaque type-check error on some unlucky import.
// The pseudo-package unsafe never has export data and is exempt.
func checkExports(entries []listEntry) error {
	var missing []string
	for _, e := range entries {
		if e.Export == "" && e.ImportPath != "unsafe" {
			missing = append(missing, e.ImportPath)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	return fmt.Errorf("lint: %w: %s (run `go build ./...` to repopulate the build cache)",
		ErrMissingExport, strings.Join(missing, ", "))
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// Load resolves the package patterns (e.g. "./...") against the module in
// dir, parses every matched package's non-test Go files, and type-checks
// them from source with imports served from compiler export data. It is the
// offline, stdlib-only stand-in for golang.org/x/tools/go/packages.Load.
//
// Test files are deliberately excluded: the invariants the suite encodes
// (cycle clocks, injected seeds, deterministic iteration) bind the
// simulator itself, while tests are free to use wall-clock timeouts and the
// analyzers would drown in false positives there.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"list", "-json=ImportPath,Dir,GoFiles,Incomplete"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	depArgs := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export,Standard"}, patterns...)
	deps, err := goList(dir, depArgs...)
	if err != nil {
		return nil, err
	}
	if err := checkExports(deps); err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, d := range deps {
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory of Go files outside the
// module's package graph — the analysistest path for testdata packages.
// Imports (standard library or module-internal) are resolved the same way
// Load resolves them, by asking the go command for export data.
func LoadDir(dir string) (*Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			importSet[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		args := []string{"list", "-export", "-deps", "-json=ImportPath,Export,Standard"}
		for p := range importSet {
			args = append(args, p)
		}
		entries, err := goList("", args...)
		if err != nil {
			return nil, err
		}
		if err := checkExports(entries); err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.Export != "" {
				exports[e.ImportPath] = e.Export
			}
		}
	}
	info := newInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", exportLookup(exports)),
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	tpkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	return &Package{Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

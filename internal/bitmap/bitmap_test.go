package bitmap

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestFromWaysAndHas(t *testing.T) {
	b := FromWays(1, 6)
	if uint64(b) != 0x42 {
		t.Fatalf("FromWays(1,6) = %#x, want 0x42 (the paper's gv_set example)", uint64(b))
	}
	if !b.Has(1) || !b.Has(6) {
		t.Errorf("ways 1,6 should be set: %v", b)
	}
	if b.Has(0) || b.Has(2) || b.Has(63) {
		t.Errorf("unexpected ways set: %v", b)
	}
}

func TestFirstN(t *testing.T) {
	cases := []struct {
		n    int
		want uint64
	}{
		{0, 0}, {1, 1}, {4, 0xf}, {16, 0xffff}, {64, ^uint64(0)},
	}
	for _, c := range cases {
		if got := FirstN(c.n); uint64(got) != c.want {
			t.Errorf("FirstN(%d) = %#x, want %#x", c.n, uint64(got), c.want)
		}
	}
}

func TestFirstNPanics(t *testing.T) {
	for _, n := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FirstN(%d) did not panic", n)
				}
			}()
			FirstN(n)
		}()
	}
}

func TestSetClear(t *testing.T) {
	var b Bitmap
	b = b.Set(3).Set(3).Set(5)
	if b.Count() != 2 {
		t.Fatalf("Count = %d, want 2", b.Count())
	}
	b = b.Clear(3)
	if b.Has(3) || !b.Has(5) {
		t.Errorf("after Clear(3): %v", b)
	}
	b = b.Clear(3) // clearing an absent way is a no-op
	if b.Count() != 1 {
		t.Errorf("Clear of absent way changed set: %v", b)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	var b Bitmap
	for _, f := range []func(){
		func() { b.Set(-1) },
		func() { b.Set(64) },
		func() { b.Clear(64) },
		func() { b.Has(-2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range way did not panic")
				}
			}()
			f()
		}()
	}
}

func TestMaskLogicOps(t *testing.T) {
	ow := FromWays(0, 1, 2, 3) // ways owned by the core
	gv := FromWays(2, 3, 8, 9) // globally visible ways in the cluster

	// Read path of the mask logic: OW | GV.
	if got := ow.Union(gv); got != FromWays(0, 1, 2, 3, 8, 9) {
		t.Errorf("read mask = %v", got)
	}
	// Write path: OW & ~GV (owned but not shared).
	if got := ow.Diff(gv); got != FromWays(0, 1) {
		t.Errorf("write mask = %v", got)
	}
	if got := ow.Intersect(gv); got != FromWays(2, 3) {
		t.Errorf("intersect = %v", got)
	}
}

func TestLowestAndTake(t *testing.T) {
	b := FromWays(5, 9, 13)
	if b.Lowest() != 5 {
		t.Errorf("Lowest = %d, want 5", b.Lowest())
	}
	if w := b.TakeLowest(); w != 5 || b.Has(5) {
		t.Errorf("TakeLowest = %d, rest %v", w, b)
	}
	var empty Bitmap
	if empty.Lowest() != -1 || empty.TakeLowest() != -1 {
		t.Error("empty bitmap should report -1")
	}
}

func TestTakeN(t *testing.T) {
	pool := FirstN(16)
	got := pool.TakeN(4)
	if got != FirstN(4) {
		t.Errorf("TakeN(4) = %v, want ways 0-3", got)
	}
	if pool.Count() != 12 {
		t.Errorf("pool left %d ways, want 12", pool.Count())
	}
	// Taking more than available drains the pool without panicking.
	small := FromWays(7)
	if got := small.TakeN(3); got != FromWays(7) || !small.IsEmpty() {
		t.Errorf("TakeN over-draw: got %v, pool %v", got, small)
	}
}

func TestWaysOrder(t *testing.T) {
	b := FromWays(13, 2, 7)
	want := []int{2, 7, 13}
	got := b.Ways()
	if len(got) != len(want) {
		t.Fatalf("Ways = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ways = %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	if s := FromWays(1, 6).String(); s != "0x42{1,6}" {
		t.Errorf("String = %q", s)
	}
	if s := Bitmap(0).String(); s != "0x0{}" {
		t.Errorf("String = %q", s)
	}
}

// Property: Count always equals the popcount of the raw register, and
// Ways() round-trips through FromWays.
func TestQuickRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := Bitmap(v)
		if b.Count() != bits.OnesCount64(v) {
			return false
		}
		return FromWays(b.Ways()...) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the read mask always contains the write mask, and the two
// partitions of OW (shared vs private) are disjoint and cover OW.
func TestQuickMaskPartition(t *testing.T) {
	f := func(ow, gv uint64) bool {
		o, g := Bitmap(ow), Bitmap(gv)
		read := o.Union(g)
		write := o.Diff(g)
		if write.Union(read) != read { // write ⊆ read
			return false
		}
		shared := o.Intersect(g)
		return shared.Intersect(write) == 0 && shared.Union(write) == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: TakeN removes exactly min(n, Count) ways and they come from the
// original set.
func TestQuickTakeN(t *testing.T) {
	f := func(v uint64, n uint8) bool {
		pool := Bitmap(v)
		orig := pool
		k := int(n % 70)
		taken := pool.TakeN(k)
		wantTaken := k
		if orig.Count() < k {
			wantTaken = orig.Count()
		}
		return taken.Count() == wantTaken &&
			taken.Union(pool) == orig &&
			taken.Intersect(pool) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

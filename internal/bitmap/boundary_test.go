package bitmap

import (
	"math/bits"
	"testing"
)

// These tests pin down the boundary behaviour the bitmask analyzer
// (internal/lint) assumes when it forces all mask construction through
// this package: indices at and beyond the way-count boundary, empty and
// full masks, and popcount on all-ones.

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestBoundaryWayIndices(t *testing.T) {
	// The last representable way works across the whole API...
	last := MaxWays - 1
	b := FromWays(last)
	if !b.Has(last) || b.Count() != 1 || b.Lowest() != last {
		t.Fatalf("way %d: Has/Count/Lowest broken: %s", last, b)
	}
	if got := b.Clear(last); !got.IsEmpty() {
		t.Fatalf("Clear(%d) = %s, want empty", last, got)
	}
	// ...and one past it panics on every entry point rather than silently
	// wrapping into a nonexistent way.
	mustPanic(t, "Set(MaxWays)", func() { Bitmap(0).Set(MaxWays) })
	mustPanic(t, "Clear(MaxWays)", func() { Bitmap(0).Clear(MaxWays) })
	mustPanic(t, "Has(MaxWays)", func() { Bitmap(0).Has(MaxWays) })
	mustPanic(t, "FromWays(MaxWays)", func() { FromWays(MaxWays) })
	mustPanic(t, "Set(-1)", func() { Bitmap(0).Set(-1) })
	mustPanic(t, "FirstN(MaxWays+1)", func() { FirstN(MaxWays + 1) })
	mustPanic(t, "FirstN(-1)", func() { FirstN(-1) })
}

func TestEmptyMask(t *testing.T) {
	var b Bitmap
	if !b.IsEmpty() || b.Count() != 0 {
		t.Fatalf("zero value not empty: %s", b)
	}
	if b.Lowest() != -1 {
		t.Fatalf("Lowest on empty = %d, want -1", b.Lowest())
	}
	if w := (&b).TakeLowest(); w != -1 {
		t.Fatalf("TakeLowest on empty = %d, want -1", w)
	}
	if got := (&b).TakeN(3); !got.IsEmpty() {
		t.Fatalf("TakeN(3) on empty = %s, want empty", got)
	}
	if len(b.Ways()) != 0 {
		t.Fatalf("Ways on empty = %v", b.Ways())
	}
	if got := FirstN(0); !got.IsEmpty() {
		t.Fatalf("FirstN(0) = %s, want empty", got)
	}
}

func TestFullMask(t *testing.T) {
	full := FirstN(MaxWays)
	if uint64(full) != ^uint64(0) {
		t.Fatalf("FirstN(MaxWays) = %#x, want all ones", uint64(full))
	}
	// Popcount on all-ones is exactly MaxWays.
	if full.Count() != MaxWays {
		t.Fatalf("Count(all-ones) = %d, want %d", full.Count(), MaxWays)
	}
	if got, want := full.Count(), bits.OnesCount64(^uint64(0)); got != want {
		t.Fatalf("Count disagrees with bits.OnesCount64: %d vs %d", got, want)
	}
	if ws := full.Ways(); len(ws) != MaxWays || ws[0] != 0 || ws[MaxWays-1] != MaxWays-1 {
		t.Fatalf("Ways(all-ones) = %v", ws)
	}
	// Every way is present; clearing them all empties the mask.
	b := full
	for w := 0; w < MaxWays; w++ {
		if !b.Has(w) {
			t.Fatalf("full mask missing way %d", w)
		}
		b = b.Clear(w)
	}
	if !b.IsEmpty() {
		t.Fatalf("clearing all ways left %s", b)
	}
	// Mask-logic identities at full width: OW|GV, OW&~GV.
	if full.Union(0) != full || full.Diff(full) != 0 || full.Intersect(full) != full {
		t.Fatal("mask-logic identities broken on all-ones")
	}
}

func TestTakeNDrainsFullMask(t *testing.T) {
	b := FirstN(MaxWays)
	got := (&b).TakeN(MaxWays)
	if got.Count() != MaxWays || !b.IsEmpty() {
		t.Fatalf("TakeN(MaxWays) took %d ways, left %s", got.Count(), b)
	}
	// Asking for more than remains takes what is there and stops.
	c := FromWays(3, 7)
	got = (&c).TakeN(MaxWays)
	if got.Count() != 2 || !c.IsEmpty() {
		t.Fatalf("TakeN over-asked: took %s, left %s", got, c)
	}
}

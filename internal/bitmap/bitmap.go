// Package bitmap provides the way-bitmap type used throughout the L1.5
// Cache model. The paper's ISA compacts way sets into bitmaps (e.g. setting
// ways 1 and 6 globally visible sends 0x42 via gv_set), and the cache's mask
// logic combines per-core ownership (OW) and global-visibility (GV) bitmaps
// with AND/OR/NOT gates. Bitmap mirrors that register-level representation.
package bitmap

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxWays is the largest number of cache ways a Bitmap can describe. The
// paper's L1.5 Cache uses 16 ways per cluster; 64 leaves room for larger
// configurations without changing the register width.
const MaxWays = 64

// Bitmap is a set of cache-way indices packed into a single register, the
// exact representation used by the L1.5 control registers and the
// supply/gv_set/gv_get instruction operands.
type Bitmap uint64

// FromWays builds a Bitmap containing the given way indices.
// Indices outside [0, MaxWays) panic: they indicate a programming error in
// the caller, never a runtime condition.
func FromWays(ways ...int) Bitmap {
	var b Bitmap
	for _, w := range ways {
		b = b.Set(w)
	}
	return b
}

// FirstN returns a Bitmap with ways 0..n-1 set.
func FirstN(n int) Bitmap {
	if n < 0 || n > MaxWays {
		panic(fmt.Sprintf("bitmap: FirstN(%d) out of range", n))
	}
	if n == MaxWays {
		return Bitmap(^uint64(0))
	}
	return Bitmap(uint64(1)<<uint(n) - 1)
}

func checkWay(w int) {
	if w < 0 || w >= MaxWays {
		panic(fmt.Sprintf("bitmap: way %d out of range [0,%d)", w, MaxWays))
	}
}

// Set returns b with way w added.
func (b Bitmap) Set(w int) Bitmap {
	checkWay(w)
	return b | 1<<uint(w)
}

// Clear returns b with way w removed.
func (b Bitmap) Clear(w int) Bitmap {
	checkWay(w)
	return b &^ (1 << uint(w))
}

// Has reports whether way w is in the set.
func (b Bitmap) Has(w int) bool {
	checkWay(w)
	return b&(1<<uint(w)) != 0
}

// Count returns the number of ways in the set (population count).
func (b Bitmap) Count() int { return bits.OnesCount64(uint64(b)) }

// IsEmpty reports whether no way is set.
func (b Bitmap) IsEmpty() bool { return b == 0 }

// Union returns the OR of the two sets, the upper-level read-path filter of
// the mask logic (OW | GV).
func (b Bitmap) Union(o Bitmap) Bitmap { return b | o }

// Intersect returns the AND of the two sets.
func (b Bitmap) Intersect(o Bitmap) Bitmap { return b & o }

// Diff returns the ways in b that are not in o, the write-path filter of the
// mask logic (OW & ~GV).
func (b Bitmap) Diff(o Bitmap) Bitmap { return b &^ o }

// Lowest returns the lowest way index in the set, or -1 if empty.
func (b Bitmap) Lowest() int {
	if b == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(b))
}

// TakeLowest removes and returns the lowest way index, or -1 if empty.
func (b *Bitmap) TakeLowest() int {
	w := b.Lowest()
	if w >= 0 {
		*b = b.Clear(w)
	}
	return w
}

// Ways returns the way indices in the set in ascending order.
func (b Bitmap) Ways() []int {
	ws := make([]int, 0, b.Count())
	for v := uint64(b); v != 0; {
		w := bits.TrailingZeros64(v)
		ws = append(ws, w)
		v &^= 1 << uint(w)
	}
	return ws
}

// TakeN removes up to n ways (lowest-first) from b and returns them as a new
// Bitmap. It is how the Walloc FSM carves free slots out of the N/U pool.
func (b *Bitmap) TakeN(n int) Bitmap {
	var out Bitmap
	for i := 0; i < n; i++ {
		w := b.TakeLowest()
		if w < 0 {
			break
		}
		out = out.Set(w)
	}
	return out
}

// String formats the bitmap as the hex literal the ISA carries plus the way
// list, e.g. "0x42{1,6}".
func (b Bitmap) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "0x%x{", uint64(b))
	for i, w := range b.Ways() {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", w)
	}
	sb.WriteByte('}')
	return sb.String()
}

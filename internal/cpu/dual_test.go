package cpu

import (
	"testing"

	"l15cache/internal/isa"
)

// runWide runs src on a Width=2 core over the flat test memory.
func runWide(t *testing.T, src string, memPorts int) (*Core, *flatMem) {
	t.Helper()
	f := newFlatMem(assemble(t, src))
	c, err := New(0, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Width = 2
	c.MemPorts = memPorts
	if _, err := c.Run(10000, nil); err != nil {
		t.Fatal(err)
	}
	return c, f
}

func TestDualIssueIndependentALU(t *testing.T) {
	// Four independent ALU ops pair into two groups; ebreak issues alone.
	c, _ := runWide(t, `
		li t0, 1
		li t1, 2
		li t2, 3
		li t3, 4
		ebreak
	`, 1)
	if c.Stats.DualIssued != 2 {
		t.Errorf("dual groups = %d, want 2", c.Stats.DualIssued)
	}
	// 2 group cycles + 1 ebreak cycle = 3.
	if c.Cycles != 3 {
		t.Errorf("cycles = %d, want 3", c.Cycles)
	}
	for reg, want := range map[int]uint32{5: 1, 6: 2, 7: 3, 28: 4} {
		if c.Regs[reg] != want {
			t.Errorf("x%d = %d, want %d", reg, c.Regs[reg], want)
		}
	}
}

func TestDualIssueRAWBlocksPairing(t *testing.T) {
	// The second op consumes the first's result: must serialise and still
	// compute correctly.
	c, _ := runWide(t, `
		li t0, 5
		addi t1, t0, 1
		ebreak
	`, 1)
	if c.Stats.DualIssued != 0 {
		t.Errorf("RAW pair issued together: %d groups", c.Stats.DualIssued)
	}
	if c.Regs[6] != 6 {
		t.Errorf("t1 = %d, want 6", c.Regs[6])
	}
}

func TestDualIssueWAWBlocksPairing(t *testing.T) {
	c, _ := runWide(t, `
		li t0, 1
		li t0, 2
		ebreak
	`, 1)
	if c.Stats.DualIssued != 0 {
		t.Error("WAW pair issued together")
	}
	if c.Regs[5] != 2 {
		t.Errorf("t0 = %d, want 2 (program order)", c.Regs[5])
	}
}

func TestDualIssueMemPortLimit(t *testing.T) {
	src := `
		li t0, 0x100
		li t1, 0x200
		lw t2, 0(t0)
		lw t3, 0(t1)
		ebreak
	`
	one, _ := runWide(t, src, 1)
	two, _ := runWide(t, src, 2)
	// With one port the two loads cannot pair; with two they can.
	// (The leading li pair always forms.)
	if one.Stats.DualIssued != 1 {
		t.Errorf("1-port dual groups = %d, want 1", one.Stats.DualIssued)
	}
	if two.Stats.DualIssued != 2 {
		t.Errorf("2-port dual groups = %d, want 2", two.Stats.DualIssued)
	}
	if two.Cycles >= one.Cycles {
		t.Errorf("second port did not help: %d vs %d", two.Cycles, one.Cycles)
	}
}

func TestDualIssueBranchAlone(t *testing.T) {
	// Control flow never pairs; the loop must execute exactly as wide as
	// the scalar core would.
	narrow, _ := run(t, `
		li t0, 3
		li t1, 0
	loop:
		add t1, t1, t0
		addi t0, t0, -1
		bnez t0, loop
		ebreak
	`)
	wide, _ := runWide(t, `
		li t0, 3
		li t1, 0
	loop:
		add t1, t1, t0
		addi t0, t0, -1
		bnez t0, loop
		ebreak
	`, 1)
	if wide.Regs[6] != narrow.Regs[6] {
		t.Errorf("results differ: %d vs %d", wide.Regs[6], narrow.Regs[6])
	}
	if wide.Cycles > narrow.Cycles {
		t.Errorf("dual issue slower than scalar: %d vs %d", wide.Cycles, narrow.Cycles)
	}
}

func TestDualIssueStoreLoadPairsWithALU(t *testing.T) {
	c, f := runWide(t, `
		li t0, 0x100
		li t1, 42
		sw t1, 0(t0)
		addi t2, t1, 1
		ebreak
	`, 1)
	// Pairs: (li,li), (sw,addi).
	if c.Stats.DualIssued != 2 {
		t.Errorf("dual groups = %d, want 2", c.Stats.DualIssued)
	}
	if f.data[0x100] != 42 || c.Regs[7] != 43 {
		t.Error("paired store/ALU produced wrong state")
	}
}

func TestDualIssueL15OpsAlone(t *testing.T) {
	c, f := runWide(t, `
		li a0, 4
		li a1, 8
		demand a0
		supply a2
		ebreak
	`, 1)
	// (li,li) pairs; demand and supply issue alone.
	if c.Stats.DualIssued != 1 {
		t.Errorf("dual groups = %d, want 1", c.Stats.DualIssued)
	}
	if len(f.l15Calls) != 2 ||
		f.l15Calls[0] != isa.OpDEMAND || f.l15Calls[1] != isa.OpSUPPLY {
		t.Errorf("l15 calls = %v", f.l15Calls)
	}
}

func TestDualIssueEquivalence(t *testing.T) {
	// A mixed program must produce identical architectural state under
	// both widths.
	src := `
		li s0, 0x100
		li s1, 0
		li t0, 10
	loop:
		sw t0, 0(s0)
		lw t1, 0(s0)
		add s1, s1, t1
		addi s0, s0, 4
		addi t0, t0, -1
		bnez t0, loop
		ebreak
	`
	narrow, _ := run(t, src)
	wide, _ := runWide(t, src, 2)
	for r := 0; r < 32; r++ {
		if narrow.Regs[r] != wide.Regs[r] {
			t.Errorf("x%d differs: %d vs %d", r, narrow.Regs[r], wide.Regs[r])
		}
	}
	if wide.Cycles >= narrow.Cycles {
		t.Errorf("no speedup from dual issue: %d vs %d cycles", wide.Cycles, narrow.Cycles)
	}
}

func TestDualIssueFaultInSecondSlot(t *testing.T) {
	// A store fault in slot B halts after slot A commits.
	f := newFlatMem(assemble(t, `
		li t0, 7
		nop
	`))
	c, _ := New(0, f, 0)
	c.Width = 2
	// Append a pair where slot B faults: craft via direct memory: the
	// flat test memory never faults on data, so use a fetch fault
	// instead — running off the end of the program.
	if _, err := c.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Error("running off the program should halt")
	}
	if c.Regs[5] != 7 {
		t.Errorf("slot A result lost: t0 = %d", c.Regs[5])
	}
}

// Package cpu models the SoC's processor cores: 5-stage pipelined,
// single-issue, in-order RV32I (the paper builds on Rocket) extended with
// the L1.5 Cache ISA of Table 1.
//
// The model executes instructions functionally and charges cycles with a
// pipeline cost model instead of simulating every stage transfer:
//
//   - 1 cycle per instruction (the pipelined steady state);
//   - instruction-fetch latency beyond 1 cycle stalls the front end;
//   - load/store latency beyond 1 cycle stalls the MA stage;
//   - a taken branch or jump flushes IF/ID: +2 cycles;
//   - a load-use hazard (consumer immediately after a load) stalls 1 cycle;
//   - L1.5 instructions execute at the MA stage through the Mini-Decoder
//     (§2.2); their results return through the dedicated L1.5→EX forwarding
//     channel (Fig. 3-d), so they add no extra hazard stall.
//
// demand is privileged (Table 1): executing it in user mode raises a
// privilege trap.
package cpu

import (
	"fmt"

	"l15cache/internal/isa"
	"l15cache/internal/kernel"
)

// Priv is the privilege level, following Table 1's encoding: 1 = kernel,
// 0 = user.
type Priv int

// Privilege levels.
const (
	PrivUser   Priv = 0
	PrivKernel Priv = 1
)

// TrapKind classifies traps.
type TrapKind int

// Trap kinds.
const (
	TrapNone TrapKind = iota
	TrapECall
	TrapEBreak
	TrapIllegal
	TrapPrivilege
	TrapMemFault
)

// String names the trap kind.
func (k TrapKind) String() string {
	switch k {
	case TrapNone:
		return "none"
	case TrapECall:
		return "ecall"
	case TrapEBreak:
		return "ebreak"
	case TrapIllegal:
		return "illegal instruction"
	case TrapPrivilege:
		return "privilege violation"
	case TrapMemFault:
		return "memory fault"
	}
	return fmt.Sprintf("trap(%d)", int(k))
}

// Trap describes a trap raised during Step.
type Trap struct {
	Kind TrapKind
	PC   uint32
	Info string
}

// MemSystem is the core's view of the memory hierarchy: the IF stage's
// instruction port, the MA stage's data port (both routed through the IPU,
// the private L1s, the cluster's L1.5 and the shared levels), and the L1.5
// control port reached through the Mini-Decoder.
type MemSystem interface {
	// FetchWord reads the instruction word at va, returning the access
	// latency in cycles.
	FetchWord(core int, va uint32) (word uint32, latency int, err error)

	// Load reads size bytes (1, 2 or 4) at va, zero-extended into a
	// uint32; the caller sign-extends as the opcode requires.
	Load(core int, va uint32, size int) (value uint32, latency int, err error)

	// Store writes the low size bytes of value at va.
	Store(core int, va uint32, size int, value uint32) (latency int, err error)

	// L15Op executes one L1.5 instruction. For supply/gv_get the result
	// is returned; for demand/gv_set/ip_set the operand carries the
	// request.
	L15Op(core int, op isa.Op, operand uint32) (result uint32, latency int, err error)
}

// Stats counts core events.
type Stats struct {
	Instret       uint64 // retired instructions
	LoadUseStalls uint64
	BranchFlushes uint64
	FetchStall    uint64 // cycles lost waiting on instruction fetch
	MemStall      uint64 // cycles lost waiting on data access
	L15Ops        uint64
	DualIssued    uint64 // §3.3 dual-issue groups retired (Width >= 2)
}

// Core is one processor.
type Core struct {
	ID   int
	PC   uint32
	Regs [32]uint32
	Priv Priv

	// Width is the issue width: 1 (default) models the 5-stage in-order
	// core of §2; 2 enables the dual-issue front end of §3.3 (Run then
	// steps through StepDual). MemPorts bounds the memory operations one
	// issue group may carry (1 for a single D$ port; 2 when the L1.5's
	// ported front end of §3.3 is present).
	Width    int
	MemPorts int

	// Cycles is the core-local cycle counter.
	Cycles uint64

	// Halted is set by ebreak (or by the environment).
	Halted bool

	Stats Stats

	mem        MemSystem
	lastLoadRd int // destination of the previous load, -1 if none
}

// New creates a core starting at pc in kernel mode (the reset state).
func New(id int, memsys MemSystem, pc uint32) (*Core, error) {
	if memsys == nil {
		return nil, fmt.Errorf("cpu: nil memory system")
	}
	return &Core{ID: id, PC: pc, Priv: PrivKernel, mem: memsys, lastLoadRd: -1}, nil
}

// NextWakeup implements the kernel wakeup protocol (DESIGN.md §11): a
// running core is runnable at its local clock; a halted core never wakes
// on its own (only the environment can restart it).
func (c *Core) NextWakeup() uint64 {
	if c.Halted {
		return kernel.Never
	}
	return c.Cycles
}

// setReg writes rd, keeping x0 hard-wired to zero.
func (c *Core) setReg(rd int, v uint32) {
	if rd != 0 {
		c.Regs[rd] = v
	}
}

// Step executes one instruction. It returns the trap raised, if any
// (TrapNone otherwise). ECALL and EBREAK return their traps with the PC
// already advanced so a handler can resume at PC. A halted core returns
// immediately.
func (c *Core) Step() (Trap, error) {
	if c.Halted {
		return Trap{}, nil
	}
	pc := c.PC

	inst, fetchLat, trap := c.fetchDecode(pc)
	if trap.Kind != TrapNone {
		c.Halted = true
		return trap, nil
	}
	c.chargeFetch(fetchLat)
	return c.executeDecoded(inst, pc)
}

// fetchDecode reads and decodes the instruction at pc without mutating the
// core (beyond the memory system's own statistics). A trap result reports
// fetch faults and illegal encodings.
func (c *Core) fetchDecode(pc uint32) (isa.Inst, int, Trap) {
	word, fetchLat, err := c.mem.FetchWord(c.ID, pc)
	if err != nil {
		return isa.Inst{}, 0, Trap{Kind: TrapMemFault, PC: pc, Info: err.Error()}
	}
	inst, err := isa.Decode(word)
	if err != nil {
		return isa.Inst{}, 0, Trap{Kind: TrapIllegal, PC: pc, Info: err.Error()}
	}
	return inst, fetchLat, Trap{}
}

func (c *Core) chargeFetch(lat int) {
	if lat > 1 {
		c.Cycles += uint64(lat - 1)
		c.Stats.FetchStall += uint64(lat - 1)
	}
}

// executeDecoded retires one already-fetched instruction.
func (c *Core) executeDecoded(inst isa.Inst, pc uint32) (Trap, error) {
	// Load-use hazard: a consumer directly after a load stalls one cycle
	// (the forwarding paths cover every other producer).
	if c.lastLoadRd > 0 && usesReg(inst, c.lastLoadRd) {
		c.Cycles++
		c.Stats.LoadUseStalls++
	}
	c.lastLoadRd = -1

	c.Cycles++ // pipelined base cost
	c.Stats.Instret++
	next := pc + 4
	rs1 := c.Regs[inst.Rs1]
	rs2 := c.Regs[inst.Rs2]

	switch {
	case inst.Op == isa.OpLUI:
		c.setReg(inst.Rd, uint32(inst.Imm)<<12)
	case inst.Op == isa.OpAUIPC:
		c.setReg(inst.Rd, pc+uint32(inst.Imm)<<12)
	case inst.Op == isa.OpJAL:
		c.setReg(inst.Rd, next)
		next = pc + uint32(inst.Imm)
		c.flush()
	case inst.Op == isa.OpJALR:
		c.setReg(inst.Rd, next)
		next = (rs1 + uint32(inst.Imm)) &^ 1
		c.flush()
	case inst.Op.IsBranch():
		if c.branchTaken(inst, rs1, rs2) {
			next = pc + uint32(inst.Imm)
			c.flush()
		}
	case inst.Op.IsLoad():
		v, lat, err := c.loadValue(inst, rs1)
		if err != nil {
			c.Halted = true
			return Trap{Kind: TrapMemFault, PC: pc, Info: err.Error()}, nil
		}
		c.chargeMem(lat)
		c.setReg(inst.Rd, v)
		c.lastLoadRd = inst.Rd
	case inst.Op.IsStore():
		size := storeSize[inst.Op]
		lat, err := c.mem.Store(c.ID, rs1+uint32(inst.Imm), size, rs2)
		if err != nil {
			c.Halted = true
			return Trap{Kind: TrapMemFault, PC: pc, Info: err.Error()}, nil
		}
		c.chargeMem(lat)
	case inst.Op.IsL15():
		if inst.Op.Privileged() && c.Priv != PrivKernel {
			c.PC = next
			return Trap{Kind: TrapPrivilege, PC: pc,
				Info: "demand requires kernel mode"}, nil
		}
		res, lat, err := c.mem.L15Op(c.ID, inst.Op, rs1)
		if err != nil {
			c.Halted = true
			return Trap{Kind: TrapMemFault, PC: pc, Info: err.Error()}, nil
		}
		c.chargeMem(lat)
		c.Stats.L15Ops++
		if inst.Op == isa.OpSUPPLY || inst.Op == isa.OpGVGET {
			// The L1.5→EX forwarding channel (Fig. 3-d) delivers
			// the result without a hazard stall.
			c.setReg(inst.Rd, res)
		}
	case inst.Op == isa.OpECALL:
		c.PC = next
		return Trap{Kind: TrapECall, PC: pc}, nil
	case inst.Op == isa.OpEBREAK:
		c.PC = next
		c.Halted = true
		return Trap{Kind: TrapEBreak, PC: pc}, nil
	case inst.Op == isa.OpFENCE:
		// Ordering is implicit in this in-order model.
	default:
		c.execALU(inst, rs1, rs2)
	}

	c.PC = next
	return Trap{}, nil
}

// Run steps until the core halts, a non-ecall trap fires, or maxInstrs
// retire. The handler (may be nil) receives ECALL traps; returning false
// halts the core.
func (c *Core) Run(maxInstrs uint64, handler func(*Core, Trap) bool) (Trap, error) {
	for n := uint64(0); n < maxInstrs && !c.Halted; n++ {
		trap, err := c.StepIssue()
		if err != nil {
			return trap, err
		}
		switch trap.Kind {
		case TrapNone:
		case TrapECall:
			if handler == nil || !handler(c, trap) {
				c.Halted = true
				return trap, nil
			}
		default:
			return trap, nil
		}
	}
	return Trap{}, nil
}

// StepIssue advances the core by one issue group: StepDual when the core
// is configured dual-issue (§3.3), Step otherwise.
func (c *Core) StepIssue() (Trap, error) {
	if c.Width >= 2 {
		return c.StepDual()
	}
	return c.Step()
}

func (c *Core) flush() {
	c.Cycles += 2
	c.Stats.BranchFlushes++
}

func (c *Core) chargeMem(lat int) {
	if lat > 1 {
		c.Cycles += uint64(lat - 1)
		c.Stats.MemStall += uint64(lat - 1)
	}
}

func (c *Core) branchTaken(inst isa.Inst, rs1, rs2 uint32) bool {
	switch inst.Op {
	case isa.OpBEQ:
		return rs1 == rs2
	case isa.OpBNE:
		return rs1 != rs2
	case isa.OpBLT:
		return int32(rs1) < int32(rs2)
	case isa.OpBGE:
		return int32(rs1) >= int32(rs2)
	case isa.OpBLTU:
		return rs1 < rs2
	case isa.OpBGEU:
		return rs1 >= rs2
	default:
		return false // executeDecoded routes only branch ops here
	}
}

// Access widths per memory op, hoisted to package level: building a map
// literal per executed load/store is a heap allocation on the step path.
var (
	storeSize = map[isa.Op]int{isa.OpSB: 1, isa.OpSH: 2, isa.OpSW: 4}
	loadSize  = map[isa.Op]int{
		isa.OpLB: 1, isa.OpLBU: 1, isa.OpLH: 2, isa.OpLHU: 2, isa.OpLW: 4,
	}
)

func (c *Core) loadValue(inst isa.Inst, rs1 uint32) (uint32, int, error) {
	va := rs1 + uint32(inst.Imm)
	size := loadSize[inst.Op]
	v, lat, err := c.mem.Load(c.ID, va, size)
	if err != nil {
		return 0, 0, err
	}
	switch inst.Op {
	case isa.OpLB:
		v = uint32(int32(v<<24) >> 24)
	case isa.OpLH:
		v = uint32(int32(v<<16) >> 16)
	default:
		// OpLBU, OpLHU and OpLW are zero-extended or full-width: no fixup.
	}
	return v, lat, nil
}

func (c *Core) execALU(inst isa.Inst, rs1, rs2 uint32) {
	var v uint32
	switch inst.Op {
	case isa.OpADDI:
		v = rs1 + uint32(inst.Imm)
	case isa.OpSLTI:
		if int32(rs1) < inst.Imm {
			v = 1
		}
	case isa.OpSLTIU:
		if rs1 < uint32(inst.Imm) {
			v = 1
		}
	case isa.OpXORI:
		v = rs1 ^ uint32(inst.Imm)
	case isa.OpORI:
		v = rs1 | uint32(inst.Imm)
	case isa.OpANDI:
		v = rs1 & uint32(inst.Imm)
	case isa.OpSLLI:
		v = rs1 << uint32(inst.Imm)
	case isa.OpSRLI:
		v = rs1 >> uint32(inst.Imm)
	case isa.OpSRAI:
		v = uint32(int32(rs1) >> uint32(inst.Imm))
	case isa.OpADD:
		v = rs1 + rs2
	case isa.OpSUB:
		v = rs1 - rs2
	case isa.OpSLL:
		v = rs1 << (rs2 & 31)
	case isa.OpSLT:
		if int32(rs1) < int32(rs2) {
			v = 1
		}
	case isa.OpSLTU:
		if rs1 < rs2 {
			v = 1
		}
	case isa.OpXOR:
		v = rs1 ^ rs2
	case isa.OpSRL:
		v = rs1 >> (rs2 & 31)
	case isa.OpSRA:
		v = uint32(int32(rs1) >> (rs2 & 31))
	case isa.OpOR:
		v = rs1 | rs2
	case isa.OpAND:
		v = rs1 & rs2
	default:
		// Unreachable: executeDecoded routes only ALU ops here.
	}
	c.setReg(inst.Rd, v)
}

// usesReg reports whether the instruction reads register r.
func usesReg(inst isa.Inst, r int) bool {
	switch {
	case inst.Op == isa.OpLUI || inst.Op == isa.OpAUIPC || inst.Op == isa.OpJAL,
		inst.Op == isa.OpECALL, inst.Op == isa.OpEBREAK, inst.Op == isa.OpFENCE:
		return false
	case inst.Op == isa.OpSUPPLY || inst.Op == isa.OpGVGET:
		return false
	case inst.Op.IsBranch() || inst.Op.IsStore():
		return inst.Rs1 == r || inst.Rs2 == r
	case inst.Op >= isa.OpADD && inst.Op <= isa.OpAND:
		return inst.Rs1 == r || inst.Rs2 == r
	default:
		return inst.Rs1 == r
	}
}

package cpu

import "l15cache/internal/isa"

// §3.3: supporting instruction-level parallelism. The L1.5 design is
// compatible with superscalar cores; this file models the processor side of
// that claim — a dual-issue in-order front end. Two consecutive
// instructions retire in one cycle when
//
//   - both are "simple" (ALU, LUI/AUIPC, load or store): control flow,
//     system and L1.5 instructions always issue alone so the Mini-Decoder
//     and trap logic stay single-path;
//   - the second does not read the first's destination (RAW) and they do
//     not write the same register (WAW);
//   - together they carry at most MemPorts memory operations (one D$ port
//     on the baseline core; two when the L1.5's ported front end is
//     deployed).
//
// Run uses StepDual automatically when Width >= 2.

// pairable reports whether an instruction may participate in a dual-issue
// group at all.
func pairable(op isa.Op) bool {
	switch {
	case op.IsBranch(), op.IsL15():
		return false
	case op == isa.OpJAL, op == isa.OpJALR, op == isa.OpECALL,
		op == isa.OpEBREAK, op == isa.OpFENCE, op == isa.OpInvalid:
		return false
	}
	return true
}

// writesReg returns the destination register of the instruction, or 0 when
// it writes none (x0 doubles as "no destination" since writes to it are
// void).
func writesReg(inst isa.Inst) int {
	if inst.Op.IsStore() || inst.Op.IsBranch() {
		return 0
	}
	return inst.Rd
}

// canPair applies the §3.3 grouping rules to two decoded instructions.
func (c *Core) canPair(a, b isa.Inst) bool {
	if !pairable(a.Op) || !pairable(b.Op) {
		return false
	}
	// Structural: memory ports.
	mem := 0
	if a.Op.IsLoad() || a.Op.IsStore() {
		mem++
	}
	if b.Op.IsLoad() || b.Op.IsStore() {
		mem++
	}
	ports := c.MemPorts
	if ports <= 0 {
		ports = 1
	}
	if mem > ports {
		return false
	}
	// Data hazards.
	if rd := writesReg(a); rd != 0 {
		if usesReg(b, rd) {
			return false // RAW
		}
		if writesReg(b) == rd {
			return false // WAW
		}
	}
	return true
}

// StepDual executes one issue group: two instructions when the §3.3 rules
// allow it, otherwise one (with identical semantics to Step).
func (c *Core) StepDual() (Trap, error) {
	if c.Halted {
		return Trap{}, nil
	}
	pc := c.PC

	instA, latA, trap := c.fetchDecode(pc)
	if trap.Kind != TrapNone {
		c.Halted = true
		return trap, nil
	}
	if !pairable(instA.Op) {
		c.chargeFetch(latA)
		return c.executeDecoded(instA, pc)
	}
	instB, latB, trapB := c.fetchDecode(pc + 4)
	if trapB.Kind != TrapNone || !c.canPair(instA, instB) {
		// Issue A alone; B (or its fault) is next cycle's problem.
		c.chargeFetch(latA)
		return c.executeDecoded(instA, pc)
	}

	// Combined accounting: the two fetches overlap (same or adjacent
	// lines through the same front end), so charge the slower one.
	if latB > latA {
		latA = latB
	}
	c.chargeFetch(latA)
	if c.lastLoadRd > 0 && (usesReg(instA, c.lastLoadRd) || usesReg(instB, c.lastLoadRd)) {
		c.Cycles++
		c.Stats.LoadUseStalls++
	}
	c.lastLoadRd = -1

	c.Cycles++ // one issue cycle for the group
	c.Stats.Instret += 2
	c.Stats.DualIssued++

	var memLat int
	if trap, ok := c.execInGroup(instA, pc, &memLat); !ok {
		return trap, nil
	}
	if trap, ok := c.execInGroup(instB, pc+4, &memLat); !ok {
		return trap, nil
	}
	c.chargeMem(memLat)
	c.PC = pc + 8
	return Trap{}, nil
}

// execInGroup executes one half of a dual-issued group. memLat accumulates
// the slower memory latency across the pair (the group retires together,
// so the two accesses overlap and only the maximum is charged). A method
// rather than a closure: StepDual runs per instruction pair, and a
// capturing closure there is a heap allocation on the step path.
func (c *Core) execInGroup(inst isa.Inst, at uint32, memLat *int) (Trap, bool) {
	rs1 := c.Regs[inst.Rs1]
	rs2 := c.Regs[inst.Rs2]
	switch {
	case inst.Op == isa.OpLUI:
		c.setReg(inst.Rd, uint32(inst.Imm)<<12)
	case inst.Op == isa.OpAUIPC:
		c.setReg(inst.Rd, at+uint32(inst.Imm)<<12)
	case inst.Op.IsLoad():
		v, lat, err := c.loadValue(inst, rs1)
		if err != nil {
			c.Halted = true
			return Trap{Kind: TrapMemFault, PC: at, Info: err.Error()}, false
		}
		if lat > *memLat {
			*memLat = lat
		}
		c.setReg(inst.Rd, v)
		c.lastLoadRd = inst.Rd
	case inst.Op.IsStore():
		lat, err := c.mem.Store(c.ID, rs1+uint32(inst.Imm), storeSize[inst.Op], rs2)
		if err != nil {
			c.Halted = true
			return Trap{Kind: TrapMemFault, PC: at, Info: err.Error()}, false
		}
		if lat > *memLat {
			*memLat = lat
		}
	default:
		c.execALU(inst, rs1, rs2)
	}
	return Trap{}, true
}

package cpu

import (
	"fmt"
	"testing"

	"l15cache/internal/isa"
)

// flatMem is a MemSystem over a word map with fixed latencies.
type flatMem struct {
	words    map[uint32]uint32
	data     map[uint32]byte
	fetchLat int
	memLat   int

	l15Calls []isa.Op
	l15Ret   uint32
}

func newFlatMem(prog []uint32) *flatMem {
	f := &flatMem{
		words:    map[uint32]uint32{},
		data:     map[uint32]byte{},
		fetchLat: 1,
		memLat:   1,
	}
	for i, w := range prog {
		f.words[uint32(4*i)] = w
	}
	return f
}

func (f *flatMem) FetchWord(core int, va uint32) (uint32, int, error) {
	w, ok := f.words[va]
	if !ok {
		return 0, 0, fmt.Errorf("no instruction at %#x", va)
	}
	return w, f.fetchLat, nil
}

func (f *flatMem) Load(core int, va uint32, size int) (uint32, int, error) {
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(f.data[va+uint32(i)]) << (8 * i)
	}
	return v, f.memLat, nil
}

func (f *flatMem) Store(core int, va uint32, size int, value uint32) (int, error) {
	for i := 0; i < size; i++ {
		f.data[va+uint32(i)] = byte(value >> (8 * i))
	}
	return f.memLat, nil
}

func (f *flatMem) L15Op(core int, op isa.Op, operand uint32) (uint32, int, error) {
	f.l15Calls = append(f.l15Calls, op)
	return f.l15Ret, 1, nil
}

func assemble(t *testing.T, src string) []uint32 {
	t.Helper()
	words, err := isa.Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return words
}

func run(t *testing.T, src string) (*Core, *flatMem) {
	t.Helper()
	f := newFlatMem(assemble(t, src))
	c, err := New(0, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(10000, nil); err != nil {
		t.Fatal(err)
	}
	return c, f
}

func TestArithmetic(t *testing.T) {
	c, _ := run(t, `
		li a0, 10
		li a1, 3
		add a2, a0, a1
		sub a3, a0, a1
		xor a4, a0, a1
		and a5, a0, a1
		or a6, a0, a1
		slli a7, a0, 4
		srai t0, a3, 1
		slt t1, a1, a0
		sltu t2, a0, a1
		ebreak
	`)
	want := map[int]uint32{
		12: 13, 13: 7, 14: 9, 15: 2, 16: 11, 17: 160, 5: 3, 6: 1, 7: 0,
	}
	for reg, v := range want {
		if c.Regs[reg] != v {
			t.Errorf("x%d = %d, want %d", reg, c.Regs[reg], v)
		}
	}
	if !c.Halted {
		t.Error("ebreak should halt")
	}
}

func TestX0HardwiredZero(t *testing.T) {
	c, _ := run(t, `
		li t0, 42
		add zero, t0, t0
		addi x0, x0, 5
		ebreak
	`)
	if c.Regs[0] != 0 {
		t.Errorf("x0 = %d", c.Regs[0])
	}
}

func TestLoadsStores(t *testing.T) {
	c, f := run(t, `
		li t0, 0x100
		li t1, -2
		sw t1, 0(t0)
		lw t2, 0(t0)
		lb t3, 0(t0)
		lbu t4, 0(t0)
		lh t5, 0(t0)
		lhu t6, 0(t0)
		ebreak
	`)
	if got := c.Regs[7]; got != 0xfffffffe {
		t.Errorf("lw = %#x", got)
	}
	if got := c.Regs[28]; got != 0xfffffffe {
		t.Errorf("lb sign extension = %#x", got)
	}
	if got := c.Regs[29]; got != 0xfe {
		t.Errorf("lbu = %#x", got)
	}
	if got := c.Regs[30]; got != 0xfffffffe {
		t.Errorf("lh = %#x", got)
	}
	if got := c.Regs[31]; got != 0xfffe {
		t.Errorf("lhu = %#x", got)
	}
	if f.data[0x100] != 0xfe || f.data[0x103] != 0xff {
		t.Error("store bytes wrong")
	}
}

func TestBranchLoop(t *testing.T) {
	c, _ := run(t, `
		li t0, 5
		li t1, 0
	loop:
		add t1, t1, t0
		addi t0, t0, -1
		bnez t0, loop
		ebreak
	`)
	if c.Regs[6] != 15 {
		t.Errorf("sum = %d, want 15", c.Regs[6])
	}
	if c.Stats.BranchFlushes != 4 {
		t.Errorf("branch flushes = %d, want 4 (taken branches only)", c.Stats.BranchFlushes)
	}
}

func TestJalLinksAndJalrReturns(t *testing.T) {
	c, _ := run(t, `
		li a0, 1
		jal ra, fn
		addi a0, a0, 10    # executed after return
		ebreak
	fn:
		addi a0, a0, 100
		ret
	`)
	if c.Regs[10] != 111 {
		t.Errorf("a0 = %d, want 111", c.Regs[10])
	}
}

func TestCycleAccounting(t *testing.T) {
	// Three dependent ALU instructions: fully pipelined, 1 cycle each.
	c, _ := run(t, `
		li t0, 1
		addi t0, t0, 1
		addi t0, t0, 1
		ebreak
	`)
	if c.Cycles != 4 {
		t.Errorf("cycles = %d, want 4", c.Cycles)
	}
}

func TestLoadUseHazard(t *testing.T) {
	// lw followed by a dependent add: +1 stall.
	withUse, _ := run(t, `
		li t0, 0x100
		lw t1, 0(t0)
		add t2, t1, t1
		ebreak
	`)
	// Same length with an independent instruction in between: no stall.
	noUse, _ := run(t, `
		li t0, 0x100
		lw t1, 0(t0)
		add t2, t0, t0
		ebreak
	`)
	if withUse.Stats.LoadUseStalls != 1 {
		t.Errorf("load-use stalls = %d, want 1", withUse.Stats.LoadUseStalls)
	}
	if noUse.Stats.LoadUseStalls != 0 {
		t.Errorf("independent consumer stalled: %d", noUse.Stats.LoadUseStalls)
	}
	if withUse.Cycles != noUse.Cycles+1 {
		t.Errorf("hazard cost: %d vs %d", withUse.Cycles, noUse.Cycles)
	}
}

func TestMemoryLatencyCharged(t *testing.T) {
	f := newFlatMem(assemble(t, `
		li t0, 0x100
		lw t1, 0(t0)
		ebreak
	`))
	f.memLat = 21
	c, _ := New(0, f, 0)
	c.Run(100, nil)
	// li(1) + lw(1+20 extra) + ebreak(1) = 23.
	if c.Cycles != 23 {
		t.Errorf("cycles = %d, want 23", c.Cycles)
	}
	if c.Stats.MemStall != 20 {
		t.Errorf("mem stalls = %d", c.Stats.MemStall)
	}
}

func TestFetchLatencyCharged(t *testing.T) {
	f := newFlatMem(assemble(t, "nop\nebreak"))
	f.fetchLat = 3
	c, _ := New(0, f, 0)
	c.Run(100, nil)
	// 2 instructions × (1 + 2 fetch stall) = 6.
	if c.Cycles != 6 {
		t.Errorf("cycles = %d, want 6", c.Cycles)
	}
}

func TestL15InstructionsDispatch(t *testing.T) {
	c, f := run(t, `
		li a0, 4
		demand a0
		supply a1
		li a2, 0x42
		gv_set a2
		gv_get a3
		ip_set a2
		ebreak
	`)
	want := []isa.Op{isa.OpDEMAND, isa.OpSUPPLY, isa.OpGVSET, isa.OpGVGET, isa.OpIPSET}
	if len(f.l15Calls) != len(want) {
		t.Fatalf("l15 calls = %v", f.l15Calls)
	}
	for i, op := range want {
		if f.l15Calls[i] != op {
			t.Errorf("call %d = %v, want %v", i, f.l15Calls[i], op)
		}
	}
	if c.Stats.L15Ops != 5 {
		t.Errorf("L15Ops = %d", c.Stats.L15Ops)
	}
}

func TestSupplyWritesRd(t *testing.T) {
	f := newFlatMem(assemble(t, `
		supply a1
		ebreak
	`))
	f.l15Ret = 0x0f
	c, _ := New(0, f, 0)
	c.Run(100, nil)
	if c.Regs[11] != 0x0f {
		t.Errorf("supply rd = %#x", c.Regs[11])
	}
}

func TestDemandPrivileged(t *testing.T) {
	f := newFlatMem(assemble(t, `
		li a0, 4
		demand a0
		ebreak
	`))
	c, _ := New(0, f, 0)
	c.Priv = PrivUser
	trap, err := c.Run(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if trap.Kind != TrapPrivilege {
		t.Fatalf("trap = %v, want privilege violation", trap.Kind)
	}
	if len(f.l15Calls) != 0 {
		t.Error("privileged demand reached the L1.5 from user mode")
	}
}

func TestUserModeMayUseUnprivilegedL15Ops(t *testing.T) {
	f := newFlatMem(assemble(t, `
		supply a1
		gv_get a2
		ebreak
	`))
	c, _ := New(0, f, 0)
	c.Priv = PrivUser
	trap, err := c.Run(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if trap.Kind != TrapEBreak {
		t.Errorf("trap = %v", trap.Kind)
	}
	if len(f.l15Calls) != 2 {
		t.Errorf("calls = %v", f.l15Calls)
	}
}

func TestECallHandler(t *testing.T) {
	f := newFlatMem(assemble(t, `
		li a7, 1
		ecall
		li a7, 2
		ecall
		ebreak
	`))
	c, _ := New(0, f, 0)
	var seen []uint32
	trap, err := c.Run(100, func(core *Core, tr Trap) bool {
		seen = append(seen, core.Regs[17])
		return core.Regs[17] != 2 // second ecall halts
	})
	if err != nil {
		t.Fatal(err)
	}
	if trap.Kind != TrapECall {
		t.Errorf("final trap = %v", trap.Kind)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("ecalls = %v", seen)
	}
}

func TestIllegalInstructionTrap(t *testing.T) {
	f := newFlatMem([]uint32{0xffffffff})
	c, _ := New(0, f, 0)
	trap, err := c.Run(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if trap.Kind != TrapIllegal || !c.Halted {
		t.Errorf("trap = %v halted=%v", trap.Kind, c.Halted)
	}
}

func TestMemFaultTrap(t *testing.T) {
	f := newFlatMem(assemble(t, "nop"))
	c, _ := New(0, f, 0)
	c.Run(5, nil) // runs off the program: fetch fault
	if !c.Halted {
		t.Error("fetch fault should halt")
	}
}

func TestTrapKindString(t *testing.T) {
	for kind, want := range map[TrapKind]string{
		TrapECall: "ecall", TrapEBreak: "ebreak", TrapIllegal: "illegal instruction",
		TrapPrivilege: "privilege violation", TrapMemFault: "memory fault",
		TrapNone: "none", TrapKind(9): "trap(9)",
	} {
		if kind.String() != want {
			t.Errorf("String(%d) = %q", int(kind), kind.String())
		}
	}
}

func TestNewNilMem(t *testing.T) {
	if _, err := New(0, nil, 0); err == nil {
		t.Error("nil memory system accepted")
	}
}

func TestAllBranchKinds(t *testing.T) {
	// Each branch kind taken and not taken, signed and unsigned corners.
	c, _ := run(t, `
		li t0, -1
		li t1, 1
		li s0, 0        # result bitmap
		beq t0, t0, b1
		j fail
	b1:	ori s0, s0, 1
		bne t0, t1, b2
		j fail
	b2:	ori s0, s0, 2
		blt t0, t1, b3  # -1 < 1 signed
		j fail
	b3:	ori s0, s0, 4
		bge t1, t0, b4  # 1 >= -1 signed
		j fail
	b4:	ori s0, s0, 8
		bltu t1, t0, b5 # 1 < 0xffffffff unsigned
		j fail
	b5:	ori s0, s0, 16
		bgeu t0, t1, b6 # 0xffffffff >= 1 unsigned
		j fail
	b6:	ori s0, s0, 32
		# Not-taken paths:
		beq t0, t1, fail
		bne t0, t0, fail
		blt t1, t0, fail
		bge t0, t1, fail
		bltu t0, t1, fail
		bgeu t1, t0, fail
		ebreak
	fail:
		li s0, 0
		ebreak
	`)
	if c.Regs[8] != 63 {
		t.Errorf("branch bitmap = %#x, want 0x3f", c.Regs[8])
	}
}

func TestAllALUOps(t *testing.T) {
	c, _ := run(t, `
		li t0, -8
		li t1, 3
		slti s0, t0, 0      # 1: -8 < 0
		sltiu s1, t0, 1     # 0: 0xfffffff8 not < 1
		xori s2, t1, 1      # 2
		srli s3, t0, 1      # 0x7ffffffc
		srl s4, t0, t1      # 0x1fffffff
		sra s5, t0, t1      # -1
		sll s6, t1, t1      # 24
		sltu s7, t1, t0     # 1: 3 < 0xfffffff8
		slt s8, t0, t1      # 1
		ebreak
	`)
	want := map[int]uint32{
		8: 1, 9: 0, 18: 2, 19: 0x7ffffffc, 20: 0x1fffffff,
		21: 0xffffffff, 22: 24, 23: 1, 24: 1,
	}
	for reg, v := range want {
		if c.Regs[reg] != v {
			t.Errorf("x%d = %#x, want %#x", reg, c.Regs[reg], v)
		}
	}
}

func TestLuiAuipc(t *testing.T) {
	c, _ := run(t, `
		lui t0, 0x12345
		auipc t1, 0
		ebreak
	`)
	if c.Regs[5] != 0x12345000 {
		t.Errorf("lui = %#x", c.Regs[5])
	}
	if c.Regs[6] != 4 { // auipc at pc=4
		t.Errorf("auipc = %#x, want 4", c.Regs[6])
	}
}

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark runs a reduced-size instance of the corresponding
// experiment per iteration and reports the headline quantity the paper
// reports as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and prints the reproduced numbers:
//
//	BenchmarkFig7a / b / c   — mean makespan gain of Prop vs CMP|L1 and CMP|L2
//	BenchmarkTable2          — worst-case (cold) normalised makespan gain
//	BenchmarkFig8a / b       — success-ratio advantage at 70% utilisation
//	BenchmarkFig8c           — L1.5 way utilisation and φ at 100% utilisation
//	BenchmarkAreaOverhead    — §5.4 silicon overhead ratio
//
// The full-size experiments (500 DAGs, 200 trials) live in the cmd/ tools.
package l15cache_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"l15cache/internal/area"
	"l15cache/internal/experiments"
	"l15cache/internal/flight"
	"l15cache/internal/rtsim"
	"l15cache/internal/telemetry"
	"l15cache/internal/workload"
)

func benchCfg() experiments.MakespanConfig {
	cfg := experiments.DefaultMakespanConfig()
	cfg.DAGs = 60
	cfg.Instances = 10
	return cfg
}

func reportGains(b *testing.B, s *experiments.MakespanSweep) {
	b.Helper()
	b.ReportMetric(100*s.Gain(experiments.SysCMPL1), "%gain-vs-CMP|L1")
	b.ReportMetric(100*s.Gain(experiments.SysCMPL2), "%gain-vs-CMP|L2")
}

// BenchmarkFig7a regenerates Fig. 7(a): normalised average makespan vs
// task utilisation U ∈ {0.2..1.0}.
func BenchmarkFig7a(b *testing.B) {
	var sweep *experiments.MakespanSweep
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Seed = int64(i + 1)
		s, err := experiments.SweepUtilization(context.Background(), cfg, []float64{0.2, 0.4, 0.6, 0.8, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		sweep = s
	}
	reportGains(b, sweep)
}

// BenchmarkFig7b regenerates Fig. 7(b): makespan vs layer width p.
func BenchmarkFig7b(b *testing.B) {
	var sweep *experiments.MakespanSweep
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Seed = int64(i + 1)
		s, err := experiments.SweepWidth(context.Background(), cfg, []float64{9, 12, 15, 18, 21})
		if err != nil {
			b.Fatal(err)
		}
		sweep = s
	}
	reportGains(b, sweep)
}

// BenchmarkFig7c regenerates Fig. 7(c): makespan vs critical-path ratio.
func BenchmarkFig7c(b *testing.B) {
	var sweep *experiments.MakespanSweep
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Seed = int64(i + 1)
		s, err := experiments.SweepCPR(context.Background(), cfg, []float64{0.1, 0.2, 0.3, 0.4, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		sweep = s
	}
	reportGains(b, sweep)
}

// BenchmarkMakespanParallel measures the runner-backed makespan sweep at
// the machine's full worker count — the parallel hot path of cmd/makespan.
// Its wall time against BenchmarkMakespanSerial tracks the harness
// speed-up (the two produce bit-identical sweeps by construction).
func BenchmarkMakespanParallel(b *testing.B) {
	benchMakespanWorkers(b, runtime.NumCPU())
	b.ReportMetric(float64(runtime.NumCPU()), "workers")
}

// BenchmarkMakespanSerial is BenchmarkMakespanParallel pinned to a single
// worker: the serial baseline for the harness speed-up.
func BenchmarkMakespanSerial(b *testing.B) {
	benchMakespanWorkers(b, 1)
}

func benchMakespanWorkers(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Seed = int64(i + 1)
		cfg.Run.Workers = workers
		if _, err := experiments.SweepUtilization(context.Background(), cfg, []float64{0.6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Tab. 2: the deadline-normalised *worst-case*
// makespan of CMP [15] vs the proposed system over the utilisation sweep.
func BenchmarkTable2(b *testing.B) {
	var sweep *experiments.MakespanSweep
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.Seed = int64(i + 1)
		s, err := experiments.SweepUtilization(context.Background(), cfg, []float64{0.2, 0.6, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		sweep = s
	}
	b.ReportMetric(100*sweep.WorstGain(experiments.SysCMPL1), "%worst-case-gain")
	last := sweep.Points[len(sweep.Points)-1]
	b.ReportMetric(last.Worst[experiments.SysCMPL1], "CMP-worst@U=1")
	b.ReportMetric(last.Worst[experiments.SysProp], "Prop-worst@U=1")
}

func benchCaseStudy(b *testing.B, cores int) {
	var res *experiments.CaseStudyResult
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultCaseStudyConfig(cores)
		cfg.Trials = 25
		cfg.Seed = int64(i + 1)
		r, err := experiments.RunCaseStudy(context.Background(), cfg, []float64{0.7})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	pt := res.Points[0]
	b.ReportMetric(pt.Success[rtsim.KindProp.String()], "success-Prop@70%")
	b.ReportMetric(pt.Success[rtsim.KindCMPL1.String()], "success-CMP|L1@70%")
	b.ReportMetric(pt.Success[rtsim.KindCMPL2.String()], "success-CMP|L2@70%")
}

// BenchmarkFig8a regenerates one point of Fig. 8(a): success ratios on the
// 8-core SoC at 70% target utilisation.
func BenchmarkFig8a(b *testing.B) { benchCaseStudy(b, 8) }

// BenchmarkFig8b regenerates the same point on the 16-core SoC (Fig. 8(b)).
func BenchmarkFig8b(b *testing.B) { benchCaseStudy(b, 16) }

// BenchmarkFig8c regenerates Fig. 8(c): the proposed system's L1.5 way
// utilisation and mis-configuration ratio φ at 100% utilisation, 8 cores.
func BenchmarkFig8c(b *testing.B) {
	var pts []experiments.SideEffectsPoint
	for i := 0; i < b.N; i++ {
		cfg := experiments.SideEffectsConfig{
			Trials: 10,
			Seed:   int64(i + 1),
			RT:     rtsim.DefaultConfig(),
			Set:    workload.DefaultTaskSetParams(),
		}
		p, err := experiments.RunSideEffects(context.Background(), cfg, []int{8}, []float64{1.0})
		if err != nil {
			b.Fatal(err)
		}
		pts = p
	}
	b.ReportMetric(100*pts[0].WayUtilization, "%way-utilisation")
	b.ReportMetric(100*pts[0].Phi, "%phi")
}

// BenchmarkAreaOverhead regenerates §5.4: the 16-core SoC silicon overhead
// of the L1.5 Cache over the equal-capacity conventional design.
func BenchmarkAreaOverhead(b *testing.B) {
	var rep area.OverheadReport
	for i := 0; i < b.N; i++ {
		r, err := area.CompareOverhead(area.Synopsys28nm())
		if err != nil {
			b.Fatal(err)
		}
		rep = r
	}
	b.ReportMetric(rep.Proposed.Total(), "mm2-proposed")
	b.ReportMetric(rep.Conventional.Total(), "mm2-conventional")
	b.ReportMetric(100*rep.Overhead(), "%overhead")
}

// BenchmarkAlg1 measures the scheduler itself: Algorithm 1 on a default
// synthetic DAG (its cubic complexity is the paper's stated bound).
func BenchmarkAlg1(b *testing.B) {
	cfg := experiments.DefaultMakespanConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		task := mustSynthetic(b, int64(i+1), cfg)
		b.StartTimer()
		if _, err := scheduleL15(task); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSoCSharing measures the cycle-approximate SoC executing the
// producer/consumer programming-model demo (instructions simulated per op).
func BenchmarkSoCSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSharingDemo(b)
	}
}

// BenchmarkAblationZeta measures the ζ-sweep ablation (reduced size) and
// reports the makespan ratio between no L1.5 and the paper's 16 ways.
func BenchmarkAblationZeta(b *testing.B) {
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultMakespanConfig()
		cfg.DAGs = 40
		cfg.Seed = int64(i + 1)
		r, err := experiments.AblateZeta(context.Background(), cfg, []int{0, 16})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Points[0].Value/res.Points[1].Value, "makespan-ratio-0-vs-16-ways")
}

// BenchmarkAcceptance measures the §4.2 analytical schedulability sweep and
// reports the bound-acceptance advantage at the U=2.5 crossover.
func BenchmarkAcceptance(b *testing.B) {
	var pts []experiments.AcceptancePoint
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultAcceptanceConfig()
		cfg.DAGs = 60
		cfg.Seed = int64(i + 1)
		p, err := experiments.AcceptanceRatio(context.Background(), cfg, []float64{2.5})
		if err != nil {
			b.Fatal(err)
		}
		pts = p
	}
	b.ReportMetric(pts[0].PropAccepted, "prop-bound@U=2.5")
	b.ReportMetric(pts[0].BaseAccepted, "cmp-bound@U=2.5")
}

// BenchmarkRTOSKernel measures the hardware-in-the-loop kernel: one
// periodic pipeline, two jobs, on the cycle-approximate SoC.
func BenchmarkRTOSKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runKernelBench(b)
	}
}

// benchFlightTrial runs one fixed real-time trial (8 cores, 60% target
// utilisation, proposed system), optionally with the flight recorder
// attached — the recording-on/recording-off pair behind the benchjson
// recorder-overhead gate.
func benchFlightTrial(b *testing.B, record bool) {
	b.Helper()
	// The ring is allocated once per process in the cmd tools, so it is
	// allocated once here too — the pair measures the Emit hot path, not
	// a 25 MB make([]Event) per iteration.
	var rec *flight.Recorder
	if record {
		rec = flight.New()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(7))
		set := workload.DefaultTaskSetParams()
		set.TargetUtilization = 0.6 * 8
		tasks, err := workload.TaskSet(r, set)
		if err != nil {
			b.Fatal(err)
		}
		cfg := rtsim.DefaultConfig()
		cfg.Recorder = rec
		if _, err := rtsim.Run(tasks, rtsim.KindProp, cfg); err != nil {
			b.Fatal(err)
		}
		if record && rec.Len() == 0 {
			b.Fatal("recorder attached but empty")
		}
	}
}

// BenchmarkFlightRecorderOff is the baseline half of the overhead pair.
func BenchmarkFlightRecorderOff(b *testing.B) { benchFlightTrial(b, false) }

// BenchmarkFlightRecorderOn is the recording half; benchjson -overhead
// warns when it exceeds the Off half by more than 5%.
func BenchmarkFlightRecorderOn(b *testing.B) { benchFlightTrial(b, true) }

// benchTelemetryTrial runs the same fixed trial as benchFlightTrial,
// optionally under a live telemetry sampler over the merged default
// registries — the pair behind the benchjson telemetry-overhead gate.
// The sampler polls far faster than production (1ms vs 250ms) so the
// measured overhead bounds the real deployment from above.
func benchTelemetryTrial(b *testing.B, sampled bool) {
	b.Helper()
	if sampled {
		s := telemetry.NewSampler(nil, time.Millisecond, 1024)
		s.Start()
		defer s.Stop()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rand.New(rand.NewSource(7))
		set := workload.DefaultTaskSetParams()
		set.TargetUtilization = 0.6 * 8
		tasks, err := workload.TaskSet(r, set)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rtsim.Run(tasks, rtsim.KindProp, rtsim.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOff is the baseline half of the overhead pair.
func BenchmarkTelemetryOff(b *testing.B) { benchTelemetryTrial(b, false) }

// BenchmarkTelemetryOn runs under an aggressive 1ms sampler; benchjson
// -overhead warns when it exceeds the Off half by more than 5%.
func BenchmarkTelemetryOn(b *testing.B) { benchTelemetryTrial(b, true) }

package l15cache_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the markdown documents whose intra-repo links must stay
// valid; the docs-link CI job runs exactly this test.
var docFiles = []string{
	"README.md",
	"ARCHITECTURE.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	"ROADMAP.md",
	"CHANGES.md",
}

// mdLink matches inline markdown links [text](target). Reference-style
// links are not used in this repository's docs.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinksResolve checks every relative link in the tracked markdown
// files points at a path that exists in the repository, so renames and
// deletions cannot silently strand the documentation cross-references.
func TestDocLinksResolve(t *testing.T) {
	for _, doc := range docFiles {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: %v", doc, err)
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external; availability is not this test's concern
			case strings.HasPrefix(target, "#"):
				continue // same-file anchor
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s: broken link %q: %v", doc, m[1], err)
			}
		}
	}
}

// TestDocsMentionMemoFlags pins the README/EXPERIMENTS documentation of
// the result cache to the flags the tools actually expose, so a flag
// rename breaks the build instead of the docs.
func TestDocsMentionMemoFlags(t *testing.T) {
	for _, doc := range []string{"README.md", "EXPERIMENTS.md", "DESIGN.md"} {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		if !strings.Contains(string(raw), "-memo-dir") {
			t.Errorf("%s: no mention of -memo-dir; result-cache docs missing or stale", doc)
		}
	}
}
